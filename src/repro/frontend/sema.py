"""Semantic analysis: name resolution, type checking, parallelism rules.

Annotates expression nodes with their types and enforces the rules the
hardware model depends on:

* a variable declared outside a ``spawn``/``cilk_for`` region is read-only
  inside it (it is captured by value and marshalled through the child's
  Args RAM — writes would race, and there is no register coherence
  between task units);
* ``return`` may not appear inside a spawned region;
* statement-position expressions must be calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SemanticError
from repro.frontend import ast
from repro.ir.types import F32, I1, I32, IntType, PointerType, Type


@dataclass
class VarInfo:
    name: str
    type: Type
    kind: str          # 'local', 'param', 'global', 'spawn_result'
    spawn_depth: int   # nesting level of spawn regions at declaration


@dataclass
class FuncSig:
    name: str
    param_types: List[Type]
    return_type: Optional[Type]


class Sema:
    def __init__(self, program: ast.Program):
        self.program = program
        self.functions: Dict[str, FuncSig] = {}
        self.globals: Dict[str, VarInfo] = {}
        self._scopes: List[Dict[str, VarInfo]] = []
        self._spawn_depth = 0
        self._current: Optional[FuncSig] = None

    # -- scope helpers -------------------------------------------------------

    def _push(self):
        self._scopes.append({})

    def _pop(self):
        self._scopes.pop()

    def _declare(self, info: VarInfo, line: int):
        scope = self._scopes[-1]
        if info.name in scope:
            raise SemanticError(f"redeclaration of '{info.name}'", line)
        scope[info.name] = info

    def _lookup(self, name: str) -> Optional[VarInfo]:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return self.globals.get(name)

    # -- entry point -----------------------------------------------------------

    def check(self) -> ast.Program:
        for decl in self.program.globals:
            if decl.name in self.globals:
                raise SemanticError(f"duplicate global '{decl.name}'", decl.line)
            if decl.count <= 0:
                raise SemanticError(f"global '{decl.name}' needs a positive "
                                    "element count", decl.line)
            self.globals[decl.name] = VarInfo(
                decl.name, PointerType(decl.element_type), "global", 0)

        for func in self.program.functions:
            if func.name in self.functions:
                raise SemanticError(f"duplicate function '{func.name}'", func.line)
            if func.name in self.globals:
                raise SemanticError(
                    f"'{func.name}' is both a global and a function", func.line)
            self.functions[func.name] = FuncSig(
                func.name, [p.type for p in func.params], func.return_type)

        for func in self.program.functions:
            self._check_function(func)
        return self.program

    def _check_function(self, func: ast.FuncDecl):
        self._current = self.functions[func.name]
        self._spawn_depth = 0
        self._push()
        seen = set()
        for param in func.params:
            if param.name in seen:
                raise SemanticError(f"duplicate parameter '{param.name}'",
                                    func.line)
            seen.add(param.name)
            self._declare(VarInfo(param.name, param.type, "param", 0), func.line)
        self._check_block(func.body)
        self._pop()
        self._current = None

    # -- statements ---------------------------------------------------------

    def _check_block(self, block: ast.Block):
        self._push()
        for stmt in block.statements:
            self._check_stmt(stmt)
        self._pop()

    def _check_stmt(self, stmt: ast.Stmt):
        if isinstance(stmt, ast.Block):
            self._check_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._check_var_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._check_assign(stmt)
        elif isinstance(stmt, ast.If):
            self._check_condition(stmt.condition)
            self._check_block(stmt.then_body)
            if stmt.else_body is not None:
                self._check_stmt(stmt.else_body)
        elif isinstance(stmt, ast.While):
            self._check_condition(stmt.condition)
            self._check_block(stmt.body)
        elif isinstance(stmt, ast.For):
            self._check_for(stmt)
        elif isinstance(stmt, ast.SpawnStmt):
            self._check_spawn(stmt)
        elif isinstance(stmt, ast.SyncStmt):
            pass
        elif isinstance(stmt, ast.Return):
            self._check_return(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if not isinstance(stmt.expr, ast.CallExpr):
                raise SemanticError("expression statements must be calls",
                                    stmt.line)
            self._check_call(stmt.expr)  # void calls allowed in stmt position
        else:
            raise SemanticError(f"unknown statement {type(stmt).__name__}",
                                stmt.line)

    def _check_var_decl(self, stmt: ast.VarDecl):
        if stmt.spawn_init is not None:
            sig = self._check_call(stmt.spawn_init)
            if sig.return_type is None:
                raise SemanticError(
                    f"spawned function '{stmt.spawn_init.callee}' returns "
                    "nothing", stmt.line)
            if sig.return_type != stmt.declared_type:
                raise SemanticError(
                    f"spawn result type {sig.return_type!r} does not match "
                    f"'{stmt.name}: {stmt.declared_type!r}'", stmt.line)
            kind = "spawn_result"
        else:
            if stmt.init is not None:
                init_type = self._check_expr(stmt.init, expect=stmt.declared_type)
                if init_type != stmt.declared_type:
                    raise SemanticError(
                        f"initialiser type {init_type!r} does not match "
                        f"'{stmt.name}: {stmt.declared_type!r}'", stmt.line)
            kind = "local"
        self._declare(VarInfo(stmt.name, stmt.declared_type, kind,
                              self._spawn_depth), stmt.line)

    def _check_assign(self, stmt: ast.Assign):
        target = stmt.target
        if isinstance(target, ast.VarRef):
            info = self._lookup(target.name)
            if info is None:
                raise SemanticError(f"undefined variable '{target.name}'",
                                    stmt.line)
            if info.kind == "param":
                raise SemanticError(
                    f"cannot assign to parameter '{target.name}'", stmt.line)
            if info.kind == "global":
                raise SemanticError(
                    f"cannot reassign global array '{target.name}' — "
                    "assign to its elements", stmt.line)
            if info.spawn_depth < self._spawn_depth:
                raise SemanticError(
                    f"cannot assign to '{target.name}' inside a spawned "
                    "region: outer locals are captured by value", stmt.line)
            target.type = info.type
            value_type = self._check_expr(stmt.value, expect=info.type)
            if value_type != info.type:
                raise SemanticError(
                    f"cannot assign {value_type!r} to "
                    f"'{target.name}: {info.type!r}'", stmt.line)
        elif isinstance(target, ast.Index):
            elem_type = self._check_index(target)
            value_type = self._check_expr(stmt.value, expect=elem_type)
            if value_type != elem_type:
                raise SemanticError(
                    f"cannot store {value_type!r} into {elem_type!r} element",
                    stmt.line)
        else:
            raise SemanticError("assignment target must be a variable or "
                                "array element", stmt.line)

    def _check_for(self, stmt: ast.For):
        self._push()
        self._check_stmt(stmt.init)
        self._check_condition(stmt.condition)
        if stmt.parallel:
            self._spawn_depth += 1
            self._check_block(stmt.body)
            self._spawn_depth -= 1
        else:
            self._check_block(stmt.body)
        self._check_stmt(stmt.step)
        self._pop()

    def _check_spawn(self, stmt: ast.SpawnStmt):
        if stmt.call is not None:
            self._check_call(stmt.call)
            return
        self._spawn_depth += 1
        self._check_block(stmt.block)
        self._spawn_depth -= 1

    def _check_return(self, stmt: ast.Return):
        if self._spawn_depth > 0:
            raise SemanticError("return inside a spawned region", stmt.line)
        want = self._current.return_type
        if stmt.value is None:
            if want is not None:
                raise SemanticError(
                    f"function returns {want!r} but return has no value",
                    stmt.line)
            return
        if want is None:
            raise SemanticError("void function returns a value", stmt.line)
        got = self._check_expr(stmt.value, expect=want)
        if got != want:
            raise SemanticError(f"return type {got!r} != {want!r}", stmt.line)

    def _check_condition(self, expr: ast.Expr):
        type_ = self._check_expr(expr)
        if not (type_ == I1 or isinstance(type_, IntType)):
            raise SemanticError("condition must be integer or boolean",
                                expr.line)

    # -- expressions -----------------------------------------------------------

    def _check_call(self, call: ast.CallExpr) -> FuncSig:
        sig = self.functions.get(call.callee)
        if sig is None:
            raise SemanticError(f"call to undefined function '{call.callee}'",
                                call.line)
        if len(call.args) != len(sig.param_types):
            raise SemanticError(
                f"'{call.callee}' takes {len(sig.param_types)} arguments, "
                f"got {len(call.args)}", call.line)
        for arg, want in zip(call.args, sig.param_types):
            got = self._check_expr(arg, expect=want)
            if got != want:
                raise SemanticError(
                    f"argument type {got!r} != parameter type {want!r} in "
                    f"call to '{call.callee}'", call.line)
        call.type = sig.return_type
        return sig

    def _check_index(self, expr: ast.Index) -> Type:
        base_type = self._check_expr(expr.base)
        if not base_type.is_pointer():
            raise SemanticError("indexing requires a pointer or global array",
                                expr.line)
        index_type = self._check_expr(expr.index, expect=I32)
        if not isinstance(index_type, IntType):
            raise SemanticError("array index must be an integer", expr.line)
        expr.type = base_type.pointee
        return expr.type

    def _check_expr(self, expr: ast.Expr, expect: Optional[Type] = None) -> Type:
        if isinstance(expr, ast.IntLit):
            expr.type = expect if isinstance(expect, IntType) else I32
            return expr.type
        if isinstance(expr, ast.FloatLit):
            expr.type = F32
            return F32
        if isinstance(expr, ast.VarRef):
            info = self._lookup(expr.name)
            if info is None:
                raise SemanticError(f"undefined variable '{expr.name}'",
                                    expr.line)
            expr.type = info.type
            return info.type
        if isinstance(expr, ast.Index):
            return self._check_index(expr)
        if isinstance(expr, ast.AddrOf):
            target = expr.target
            if isinstance(target, ast.Index):
                elem = self._check_index(target)
                expr.type = PointerType(elem)
            else:
                raise SemanticError("'&' supports array elements only",
                                    expr.line)
            return expr.type
        if isinstance(expr, ast.CallExpr):
            sig = self._check_call(expr)
            if sig.return_type is None:
                raise SemanticError(
                    f"void call '{expr.callee}' used as a value", expr.line)
            return sig.return_type
        if isinstance(expr, ast.Unary):
            return self._check_unary(expr, expect)
        if isinstance(expr, ast.Binary):
            return self._check_binary(expr, expect)
        raise SemanticError(f"unknown expression {type(expr).__name__}",
                            expr.line)

    def _check_unary(self, expr: ast.Unary, expect) -> Type:
        if expr.op == "-":
            inner = self._check_expr(expr.operand, expect=expect)
            if not (isinstance(inner, IntType) or inner.is_float()):
                raise SemanticError("unary '-' needs a numeric operand",
                                    expr.line)
            expr.type = inner
            return inner
        if expr.op == "!":
            self._check_condition(expr.operand)
            expr.type = I1
            return I1
        raise SemanticError(f"unknown unary operator {expr.op}", expr.line)

    def _check_binary(self, expr: ast.Binary, expect) -> Type:
        op = expr.op
        if op in ("&&", "||"):
            self._check_condition(expr.lhs)
            self._check_condition(expr.rhs)
            expr.type = I1
            return I1

        lhs = self._check_expr(expr.lhs, expect=expect)
        rhs = self._check_expr(expr.rhs, expect=lhs)
        # a default-typed literal adopts the other side's integer type
        if lhs != rhs and isinstance(expr.lhs, ast.IntLit) and isinstance(rhs, IntType):
            expr.lhs.type = rhs
            lhs = rhs
        if lhs != rhs:
            raise SemanticError(
                f"operand types {lhs!r} and {rhs!r} do not match for '{op}'",
                expr.line)

        if op in ("==", "!=", "<", "<=", ">", ">="):
            if lhs.is_pointer():
                raise SemanticError("pointer comparison is not supported",
                                    expr.line)
            expr.type = I1
            return I1
        if op in ("&", "|", "^", "<<", ">>", "%"):
            if not isinstance(lhs, IntType):
                raise SemanticError(f"'{op}' needs integer operands", expr.line)
        if op in ("+", "-", "*", "/"):
            if not (isinstance(lhs, IntType) or lhs.is_float()):
                raise SemanticError(f"'{op}' needs numeric operands", expr.line)
        expr.type = lhs
        return lhs


def analyze(program: ast.Program) -> ast.Program:
    """Type-check and annotate a parsed program."""
    return Sema(program).check()
