"""Functions: argument lists, basic blocks, and parallel-region queries."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.errors import IRError
from repro.ir.basicblock import BasicBlock
from repro.ir.types import Type, VOID
from repro.ir.values import Argument


class Function:
    """An IR function. Each function is also a static task (SID) in the
    generated accelerator; detached regions inside it become further tasks."""

    def __init__(self, name: str, arg_types: List[Type], arg_names: List[str],
                 return_type: Type = VOID):
        if len(arg_types) != len(arg_names):
            raise IRError("argument type/name count mismatch")
        self.name = name
        self.return_type = return_type
        self.arguments = [
            Argument(t, n, i) for i, (t, n) in enumerate(zip(arg_types, arg_names))
        ]
        self.blocks: List[BasicBlock] = []
        self._blocks_by_name: Dict[str, BasicBlock] = {}
        self.parent = None  # owning Module

    # -- construction --------------------------------------------------------

    def add_block(self, name: str) -> BasicBlock:
        unique = name
        counter = 1
        while unique in self._blocks_by_name:
            unique = f"{name}.{counter}"
            counter += 1
        block = BasicBlock(unique)
        block.parent = self
        self.blocks.append(block)
        self._blocks_by_name[unique] = block
        return block

    # -- queries -------------------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def block(self, name: str) -> Optional[BasicBlock]:
        return self._blocks_by_name.get(name)

    def instructions(self) -> Iterator:
        for block in self.blocks:
            yield from block.instructions

    def has_parallelism(self) -> bool:
        """True if any block ends in a detach/sync (Tapir markers present)."""
        from repro.ir.instructions import Detach, Sync

        return any(isinstance(i, (Detach, Sync)) for i in self.instructions())

    def __repr__(self):
        args = ", ".join(f"{a.name}: {a.type!r}" for a in self.arguments)
        return f"<Function {self.name}({args}) -> {self.return_type!r}>"
