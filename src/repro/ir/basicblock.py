"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.errors import IRError
from repro.ir.instructions import Instruction, Terminator


class BasicBlock:
    """A named, single-entry straight-line region of a function."""

    def __init__(self, name: str):
        self.name = name
        self.instructions: List[Instruction] = []
        self.parent = None  # owning Function, set on insertion

    # -- construction -------------------------------------------------------

    def append(self, inst: Instruction) -> Instruction:
        if self.is_terminated():
            raise IRError(
                f"cannot append to terminated block '{self.name}'")
        inst.parent = self
        self.instructions.append(inst)
        return inst

    # -- queries -------------------------------------------------------------

    @property
    def terminator(self) -> Optional[Terminator]:
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        return list(term.successors()) if term else []

    def body(self) -> List[Instruction]:
        """Instructions excluding the terminator."""
        if self.is_terminated():
            return self.instructions[:-1]
        return list(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self):
        return len(self.instructions)

    def __repr__(self):
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"
