"""Tests for the multicore CPU baseline (functional + cost model)."""

import pytest

from repro.baselines import CPUCostModel, MulticoreCPU, run_on_cpu
from repro.frontend import compile_source
from repro.memory.backing import MainMemory
from repro.workloads import REGISTRY, fib_reference

from tests.irprograms import build_fib_module, build_scale_module


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("name", REGISTRY.names())
    def test_same_results_as_accelerator(self, name):
        """The CPU interpreter executes the identical IR to identical
        results — the paper's same-source methodology."""
        w = REGISTRY.get(name)
        mem = MainMemory(1 << 22)
        cpu = MulticoreCPU(w.fresh_module(), mem)
        prepared = w.prepare(mem, 1)
        result = cpu.run(prepared.function, prepared.args)
        assert prepared.check(mem, result.retval)

    def test_hand_built_ir_also_runs(self):
        from repro.ir.types import I32

        module = build_scale_module()
        mem = MainMemory(1 << 20)
        base = mem.alloc_array(I32, range(10))
        run_on_cpu(module, "scale", [base, 10], memory=mem)
        assert mem.read_array(base, I32, 10) == [i + 1 for i in range(10)]

    def test_recursion(self):
        result = run_on_cpu(build_fib_module(), "fib", [14])
        assert result.retval == fib_reference(14)


class TestCostModel:
    def test_work_exceeds_span(self):
        w = REGISTRY.get("matrix_add")
        mem = MainMemory(1 << 22)
        cpu = MulticoreCPU(w.fresh_module(), mem)
        prepared = w.prepare(mem, 1)
        result = cpu.run(prepared.function, prepared.args)
        assert result.t1_cycles >= result.tinf_cycles
        assert result.tp_cycles >= result.t1_cycles / cpu.model.cores
        assert result.tp_cycles <= result.t1_cycles + result.tinf_cycles

    def test_more_cores_never_slower(self):
        w = REGISTRY.get("stencil")

        def tp(cores):
            mem = MainMemory(1 << 22)
            model = CPUCostModel(cores=cores)
            cpu = MulticoreCPU(w.fresh_module(), mem, model)
            prepared = w.prepare(mem, 1)
            return cpu.run(prepared.function, prepared.args).tp_cycles

        assert tp(8) <= tp(4) <= tp(1)

    def test_dynamic_task_count_fib(self):
        result = run_on_cpu(build_fib_module(), "fib", [10])
        # fib(10) spawns 2*fib(11)-1 = 177 dynamic tasks
        assert result.dynamic_tasks == 177

    def test_spawn_overhead_dominates_fine_grain_tasks(self):
        """Fig 13's flat Software line: tiny tasks are overhead-bound, so
        doubling per-task work barely moves total time."""
        src_template = """
        func work(a: i32*, i: i32) {{ a[i] = a[i] {adds}; }}
        func f(a: i32*, n: i32) {{
          var i: i32 = 0;
          while (i < n) {{
            spawn work(a, i);
            i = i + 1;
          }}
          sync;
        }}
        """

        def time_for(adds):
            module = compile_source(
                src_template.format(adds="+ 1" * adds), "m")
            mem = MainMemory(1 << 20)
            from repro.ir.types import I32

            base = mem.alloc_array(I32, [0] * 64)
            cpu = MulticoreCPU(module, mem)
            return cpu.run("f", [base, 64]).tp_cycles

        assert time_for(50) < 1.35 * time_for(5)

    def test_grain_coarsening_cheaper_than_per_iteration_spawns(self):
        """cilk_for (region spawns) is coarsened; per-iteration function
        spawns from a dynamic loop (pipeline pattern) are not."""
        cilk_for_src = """
        func f(a: i32*, n: i32) {
          cilk_for (var i: i32 = 0; i < n; i = i + 1) { a[i] = a[i] + 1; }
        }
        """
        pipeline_src = """
        func w(a: i32*, i: i32) { a[i] = a[i] + 1; }
        func f(a: i32*, n: i32) {
          var i: i32 = 0;
          while (i < n) { spawn w(a, i); i = i + 1; }
          sync;
        }
        """

        def tp(src):
            from repro.ir.types import I32

            module = compile_source(src, "m")
            mem = MainMemory(1 << 20)
            base = mem.alloc_array(I32, [0] * 256)
            return MulticoreCPU(module, mem).run("f", [base, 256]).tp_cycles

        assert tp(cilk_for_src) < 0.5 * tp(pipeline_src)

    def test_time_seconds_conversion(self):
        model = CPUCostModel()
        result = run_on_cpu(build_fib_module(), "fib", [5])
        assert result.time_seconds(model) == pytest.approx(
            result.tp_cycles / 3.4e9)
