"""Cross-validation harness: static predictions vs the event engine.

:class:`PerfChecker` runs the same (workload, tiles, scale) point twice —
once through :class:`~repro.analysis.perf.PerfModel` (microseconds, no
engine) and once through the event simulator with an attached
:class:`~repro.obs.Observer` — and scores the analytical model on three
axes:

* **ranking** — Spearman rank correlation between predicted and measured
  cycle counts across the whole point matrix (a model that orders design
  points correctly is useful for sweeps even when absolute numbers drift);
* **magnitude** — per-point relative cycle error and its median;
* **attribution** — whether the predicted top bottleneck and the
  simulator's top stall source fall in the same coarse class.

Exact stall tags rarely line up between a closed-form bound and a cycle
ledger (the model may say ``databox allocator-full`` where the simulator
blames the tile's ``memory`` wait — the same physical queue, seen from
its two ends), so attribution is compared on three coarse classes:
``memory``, ``spawn-throughput`` and ``serial-call``.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.perf import PerfModel, PerfParams, Prediction
from repro.memory.backing import MainMemory
from repro.obs import Observer

#: stall-ledger reasons that blame the memory system no matter which
#: component reports them (a tile waiting on a load and the databox that
#: holds the MSHR are two views of one backlog)
_MEMORY_REASONS = frozenset({
    "memory", "allocator-full", "mem-backpressure", "cache-backpressure",
    "mshr-full", "dram-backpressure", "resp-backpressure",
})

#: component-name fragments owned by the memory system
_MEMORY_COMPONENTS = ("databox", "l1", "dram", "memnet", "cache")


def bottleneck_class(component: str, reason: str) -> str:
    """Coarse class for one (component, reason) stall attribution.

    Three buckets: ``serial-call`` (Amdahl span through call/join),
    ``memory`` (any memory-system queue or latency), and
    ``spawn-throughput`` (everything task-unit side: dispatch, execute,
    tile capacity, spawn/join network).
    """
    if reason == "call-join":
        return "serial-call"
    if reason in _MEMORY_REASONS:
        return "memory"
    lowered = component.lower()
    if any(tag in lowered for tag in _MEMORY_COMPONENTS):
        return "memory"
    return "spawn-throughput"


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation with tie-averaged ranks (no scipy)."""
    if len(xs) != len(ys) or len(xs) < 2:
        return 0.0

    def ranks(vals: Sequence[float]) -> List[float]:
        order = sorted(range(len(vals)), key=lambda i: vals[i])
        out = [0.0] * len(vals)
        i = 0
        while i < len(order):
            j = i
            while j + 1 < len(order) and \
                    vals[order[j + 1]] == vals[order[i]]:
                j += 1
            avg = (i + j) / 2.0
            for k in range(i, j + 1):
                out[order[k]] = avg
            i = j + 1
        return out

    rx, ry = ranks(xs), ranks(ys)
    n = len(xs)
    mx, my = sum(rx) / n, sum(ry) / n
    num = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    dx = sum((a - mx) ** 2 for a in rx) ** 0.5
    dy = sum((b - my) ** 2 for b in ry) ** 0.5
    if dx == 0.0 or dy == 0.0:
        return 0.0
    return num / (dx * dy)


@dataclass
class CheckRecord:
    """One cross-validated point."""

    workload: str
    tiles: int
    scale: int
    predicted_cycles: int
    actual_cycles: int
    rel_error: float
    predicted_bottleneck: str
    actual_bottleneck: str
    predicted_class: str
    actual_class: str
    class_match: bool
    predict_seconds: float
    sim_seconds: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload, "tiles": self.tiles,
            "scale": self.scale,
            "predicted_cycles": self.predicted_cycles,
            "actual_cycles": self.actual_cycles,
            "rel_error": round(self.rel_error, 4),
            "predicted_bottleneck": self.predicted_bottleneck,
            "actual_bottleneck": self.actual_bottleneck,
            "predicted_class": self.predicted_class,
            "actual_class": self.actual_class,
            "class_match": self.class_match,
            "predict_seconds": round(self.predict_seconds, 6),
            "sim_seconds": round(self.sim_seconds, 6),
        }


@dataclass
class CheckReport:
    """Aggregate scores over a matrix of cross-validated points."""

    records: List[CheckRecord] = field(default_factory=list)
    #: one-time model construction cost per workload, seconds
    build_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def spearman(self) -> float:
        return spearman([r.predicted_cycles for r in self.records],
                        [r.actual_cycles for r in self.records])

    @property
    def median_abs_rel_error(self) -> float:
        if not self.records:
            return 0.0
        return statistics.median(abs(r.rel_error) for r in self.records)

    @property
    def class_match_rate(self) -> float:
        if not self.records:
            return 0.0
        hits = sum(1 for r in self.records if r.class_match)
        return hits / len(self.records)

    @property
    def median_speedup(self) -> float:
        """Median per-point (simulator seconds / predictor seconds)."""
        ratios = [r.sim_seconds / r.predict_seconds
                  for r in self.records if r.predict_seconds > 0]
        return statistics.median(ratios) if ratios else 0.0

    @property
    def aggregate_speedup(self) -> float:
        """Total simulator seconds over total predictor seconds.

        The sweep-replacement metric: how much faster the whole matrix
        evaluates through the model. Dominated by the big points, which
        is exactly where a predictor earns its keep.
        """
        sim = sum(r.sim_seconds for r in self.records)
        predict = sum(r.predict_seconds for r in self.records)
        return sim / predict if predict > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": 1,
            "points": len(self.records),
            "spearman": round(self.spearman, 4),
            "median_abs_rel_error": round(self.median_abs_rel_error, 4),
            "class_match_rate": round(self.class_match_rate, 4),
            "median_speedup": round(self.median_speedup, 1),
            "aggregate_speedup": round(self.aggregate_speedup, 1),
            "build_seconds": {k: round(v, 6)
                              for k, v in sorted(self.build_seconds.items())},
            "records": [r.as_dict() for r in self.records],
        }

    def render_text(self) -> str:
        lines = [f"perfcheck: {len(self.records)} points"]
        for r in self.records:
            match = "=" if r.class_match else "!"
            lines.append(
                f"  {r.workload:<14} t{r.tiles} s{r.scale}  "
                f"pred={r.predicted_cycles:>9} act={r.actual_cycles:>9} "
                f"err={r.rel_error:>+7.1%}  "
                f"{r.predicted_class:<16}{match}={r.actual_class}")
        lines.append(
            f"  spearman={self.spearman:.4f}  "
            f"median |err|={self.median_abs_rel_error:.1%}  "
            f"class match={self.class_match_rate:.0%}  "
            f"speedup={self.aggregate_speedup:,.0f}x aggregate "
            f"({self.median_speedup:,.0f}x median)")
        return "\n".join(lines)


class PerfChecker:
    """Runs predictor and simulator on the same points and compares.

    One :class:`PerfModel` is built per workload and reused across the
    (tiles, scale) grid — mirroring how a sweep would amortise the static
    analysis over many design points.
    """

    def __init__(self, params: Optional[PerfParams] = None):
        self.params = params
        self._models: Dict[str, Tuple[PerfModel, float]] = {}

    def model_for(self, workload) -> PerfModel:
        cached = self._models.get(workload.name)
        if cached is not None:
            return cached[0]
        start = time.perf_counter()
        model = PerfModel(workload.fresh_module(), params=self.params)
        elapsed = time.perf_counter() - start
        self._models[workload.name] = (model, elapsed)
        return model

    def predict_point(self, workload, tiles: int,
                      scale: int) -> Tuple[Prediction, float]:
        """Static prediction for one point; returns (prediction, secs)."""
        model = self.model_for(workload)
        config = workload.default_config(ntiles=tiles)
        prepared = workload.prepare(MainMemory(), scale)
        start = time.perf_counter()
        prediction = model.predict(entry=workload.entry, config=config,
                                   args=prepared.args,
                                   size=prepared.work_items or None)
        return prediction, time.perf_counter() - start

    def check_point(self, workload, tiles: int, scale: int,
                    max_cycles: int = 50_000_000) -> CheckRecord:
        """Predict, then simulate with an observer, then compare."""
        prediction, predict_seconds = self.predict_point(
            workload, tiles, scale)

        observer = Observer(keep_timeline=False)
        config = workload.default_config(ntiles=tiles)
        start = time.perf_counter()
        result = workload.run(config, scale=scale, max_cycles=max_cycles,
                              observer=observer)
        sim_seconds = time.perf_counter() - start

        top = prediction.top_bottleneck
        predicted_tag = f"{top.component}:{top.reason}" if top else "none"
        predicted_cls = (bottleneck_class(top.component, top.reason)
                         if top else "none")
        sources = observer.stall_sources()
        if sources:
            comp, reason, _cycles = sources[0]
            actual_tag = f"{comp}:{reason}"
            actual_cls = bottleneck_class(comp, reason)
        else:
            actual_tag = actual_cls = "none"

        actual = max(1, result.cycles)
        return CheckRecord(
            workload=workload.name, tiles=tiles, scale=scale,
            predicted_cycles=prediction.cycles, actual_cycles=result.cycles,
            rel_error=(prediction.cycles - actual) / actual,
            predicted_bottleneck=predicted_tag, actual_bottleneck=actual_tag,
            predicted_class=predicted_cls, actual_class=actual_cls,
            class_match=(predicted_cls == actual_cls),
            predict_seconds=predict_seconds, sim_seconds=sim_seconds)

    def check_matrix(self, workloads: Iterable[Any],
                     tiles: Sequence[int] = (1, 2, 4, 8),
                     scales: Sequence[int] = (1, 2),
                     max_cycles: int = 50_000_000) -> CheckReport:
        report = CheckReport()
        for workload in workloads:
            for scale in scales:
                for ntiles in tiles:
                    report.records.append(self.check_point(
                        workload, ntiles, scale, max_cycles=max_cycles))
            _model, build = self._models[workload.name]
            report.build_seconds[workload.name] = build
        return report
