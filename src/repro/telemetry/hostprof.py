"""Host-time attribution for the simulator: where do host seconds go?

The guest-side ledgers (``repro.obs``) explain simulated cycles; this
profiler explains the *host* wall-clock the simulator itself burns —
the direct targeting data for the compile-the-simulator work on the
roadmap. Enabled, it wraps every component's ``tick`` with a
``perf_counter_ns`` accumulator bucketed by component class, and the
engine separately times channel commits, observer sampling and its run
loop. Disabled (the default), the engine pays exactly one ``is None``
test per cycle and simulated cycle counts are bit-identical — enforced
by ``tests/telemetry/test_hostprof.py`` on both engines.

Attribution is exhaustive: wall-clock not inside a component tick, a
channel commit or the observer is reported as the named
``engine.schedule`` phase (wake-set bookkeeping, heap scans, ``done()``
polling), so the ranked report always accounts for 100% of the run
loop while the *measured* fraction stays an honest machinery check.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.errors import SimulationError

_ns = time.perf_counter_ns


class HostProfiler:
    """Per-component-class host-time accumulator for one Simulator."""

    def __init__(self):
        self.sim = None
        #: class name -> [total ns, tick calls]; lists keep the wrapper
        #: hot path at two indexed adds, no attribute traffic
        self._classes: Dict[str, List[int]] = {}
        self.commit_ns = 0        # channel commit loops (engine-timed)
        self.observer_ns = 0      # observer sampling (wrapped below)
        self.wall_ns = 0          # Simulator.run loop while installed
        self._saved_ticks: List[tuple] = []
        self._saved_observer: Optional[tuple] = None

    # -- install/uninstall -------------------------------------------------

    def install(self, sim) -> "HostProfiler":
        """Wrap every registered component (and the attached observer, if
        any) and hand the profiler to ``sim``. Pure instrumentation: the
        wrappers time the original methods and change nothing else, so
        simulation results are bit-identical with the profiler on."""
        if self.sim is not None:
            raise SimulationError("host profiler is already installed")
        self.sim = sim
        for component in sim.components:
            self._wrap_component(component)
        observer = sim.observer
        if observer is not None:
            self._wrap_observer(observer)
        sim.host_profile = self
        return self

    def uninstall(self) -> None:
        """Restore every wrapped method and detach from the simulator."""
        for component, _ in self._saved_ticks:
            component.__dict__.pop("tick", None)
        self._saved_ticks = []
        if self._saved_observer is not None:
            observer, on_cycle, on_quiet = self._saved_observer
            observer.__dict__.pop("on_cycle", None)
            if on_quiet is not None:
                observer.__dict__.pop("on_quiet_span", None)
            self._saved_observer = None
        if self.sim is not None:
            self.sim.host_profile = None
            self.sim = None

    def _bucket(self, class_name: str) -> List[int]:
        bucket = self._classes.get(class_name)
        if bucket is None:
            bucket = self._classes[class_name] = [0, 0]
        return bucket

    def _wrap_component(self, component) -> None:
        inner = component.tick  # the class method, bound — before shadowing
        bucket = self._bucket(type(component).__name__)

        def timed_tick(cycle, _inner=inner, _bucket=bucket):
            t0 = _ns()
            _inner(cycle)
            _bucket[0] += _ns() - t0
            _bucket[1] += 1

        self._saved_ticks.append((component, inner))
        component.tick = timed_tick

    def _wrap_observer(self, observer) -> None:
        on_cycle = observer.on_cycle
        on_quiet = getattr(observer, "on_quiet_span", None)

        def timed_on_cycle(sim, cycle, _inner=on_cycle):
            t0 = _ns()
            _inner(sim, cycle)
            self.observer_ns += _ns() - t0

        observer.on_cycle = timed_on_cycle
        if on_quiet is not None:
            def timed_on_quiet(sim, start, span, _inner=on_quiet):
                t0 = _ns()
                _inner(sim, start, span)
                self.observer_ns += _ns() - t0

            observer.on_quiet_span = timed_on_quiet
        self._saved_observer = (observer, on_cycle, on_quiet)

    # -- derived numbers ---------------------------------------------------

    @property
    def component_ns(self) -> int:
        return sum(bucket[0] for bucket in self._classes.values())

    @property
    def measured_ns(self) -> int:
        """Host time directly measured inside a named activity."""
        return self.component_ns + self.commit_ns + self.observer_ns

    @property
    def schedule_ns(self) -> int:
        """Run-loop residual: wake bookkeeping, heap scans, ``done()``
        checks, accounting — everything between the timed activities."""
        return max(0, self.wall_ns - self.measured_ns)

    def measured_fraction(self) -> float:
        """Directly-timed share of the run-loop wall-clock (<= 1.0)."""
        if not self.wall_ns:
            return 0.0
        return min(1.0, self.measured_ns / self.wall_ns)

    def coverage(self) -> float:
        """Share of run-loop wall-clock attributed to *named* classes
        and phases. ``engine.schedule`` names the measured residual, so
        a healthy profile covers ~1.0; a broken install shows up as a
        zero measured fraction instead."""
        if not self.wall_ns:
            return 0.0
        return min(1.0, (self.measured_ns + self.schedule_ns) / self.wall_ns)

    def ranked_classes(self) -> List[dict]:
        """Component classes by descending host cost."""
        rows = []
        for name, (total_ns, calls) in self._classes.items():
            rows.append({
                "class": name,
                "seconds": total_ns / 1e9,
                "ticks": calls,
                "ns_per_tick": round(total_ns / calls) if calls else 0,
            })
        rows.sort(key=lambda row: (-row["seconds"], row["class"]))
        return rows

    def phases(self) -> Dict[str, float]:
        """Named engine phases (seconds) outside the component ticks."""
        return {
            "channels.commit": self.commit_ns / 1e9,
            "observer": self.observer_ns / 1e9,
            "engine.schedule": self.schedule_ns / 1e9,
        }

    def as_dict(self) -> dict:
        return {
            "schema": 1,
            "engine": self.sim.engine if self.sim is not None else None,
            "wall_seconds": round(self.wall_ns / 1e9, 6),
            "measured_fraction": round(self.measured_fraction(), 4),
            "coverage": round(self.coverage(), 4),
            "classes": [
                {"class": row["class"],
                 "seconds": round(row["seconds"], 6),
                 "ticks": row["ticks"],
                 "ns_per_tick": row["ns_per_tick"]}
                for row in self.ranked_classes()
            ],
            "phases": {name: round(seconds, 6)
                       for name, seconds in self.phases().items()},
        }
