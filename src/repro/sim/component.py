"""Base class for clocked hardware components."""

from __future__ import annotations

#: sentinel wake time: "never wake me on a timer — only channel activity
#: (or an explicit reschedule) makes me runnable again"
NEVER = 1 << 62

#: cycle-accounting states — every simulated cycle of every component is
#: attributed to exactly one of these (the Table III utilization model):
#: doing useful work, waiting for upstream data, blocked by downstream
#: backpressure, or idle with nothing to do.
OBS_BUSY = "busy"
OBS_STALL_IN = "stall_in"
OBS_STALL_OUT = "stall_out"
OBS_IDLE = "idle"

OBS_STATES = (OBS_BUSY, OBS_STALL_IN, OBS_STALL_OUT, OBS_IDLE)


#: sentinel wake time for components in the engine's *hot set*: they are
#: ticked unconditionally every cycle, so channel-commit subscriber scans
#: must never re-enqueue them (HOT < any real cycle makes the
#: ``next_cycle < _wake_cycle`` wake test always false)
HOT = -1


class Component:
    """A clocked block. Once per cycle the engine calls :meth:`tick`;
    channel reads inside tick observe start-of-cycle state, so tick order
    between components never changes behaviour.

    The base class declares ``__slots__`` so the engine-owned scheduling
    fields (read and written on every tick of every component) live in
    slots; subclasses add their own ``__dict__`` as usual.
    """

    __slots__ = ("name", "sim", "_sim_index", "_wake_cycle",
                 "_event_aware", "_hot", "_hot_streak", "__dict__",
                 "__weakref__")

    def __init__(self, name: str):
        self.name = name
        self.sim = None  # set on registration
        # event-engine bookkeeping, owned by the Simulator
        self._sim_index = -1
        self._wake_cycle = NEVER
        self._event_aware = False
        self._hot = False        # member of the engine's hot set
        self._hot_streak = 0     # consecutive stay-hot wakes (promotion)

    def tick(self, cycle: int):
        """Do one cycle of work: read input channels, update internal
        state, push output channels."""

    # -- event-engine contract ---------------------------------------------

    def sensitivity(self):
        """Channels whose committed movement (a push or a pop) must wake
        this component on the following cycle.

        Return ``None`` (the default) to opt out of event-driven
        scheduling: the engine then wakes the component on every cycle,
        which is always correct — exactly the dense-engine behaviour.
        An event-aware component returns every channel it reads *or*
        writes; waking too often is harmless (a quiescent tick is a
        no-op), waking too rarely breaks bit-identity with the dense
        engine.
        """
        return None

    def next_wake(self, cycle: int) -> int:
        """Earliest future cycle this component can make progress without
        new activity on its sensitivity channels.

        Called by the event engine immediately after :meth:`tick`.
        Return :data:`NEVER` when only channel traffic can unblock it
        (the quiescent state that enables fast-forward), a deadline for
        internal countdowns (DRAM in flight, pipeline registers), or
        ``cycle + 1`` to stay hot. The default keeps the component woken
        every cycle — dense semantics.
        """
        return cycle + 1

    def is_busy(self) -> bool:
        """True while the component holds in-flight work that will make
        progress without new channel traffic (e.g. a DRAM access counting
        down). Used by deadlock detection."""
        return False

    def ports(self):
        """Directed channel endpoints for the static netlist verifier:
        ``(inputs, outputs)`` — channels this component pops from and
        pushes to. Return ``None`` (the default) when the component does
        not declare its wiring; the verifier then treats it as opaque and
        will not report its channels as dangling."""
        return None

    def stats(self) -> dict:
        """Per-component statistics merged into the simulation report."""
        return {}

    # -- observability -----------------------------------------------------

    def obs_classify(self, cycle: int):
        """Attribute the cycle that just executed to one accounting state.

        Returns ``(state, reason)`` where ``state`` is one of
        :data:`OBS_STATES` and ``reason`` is an optional short stall tag
        (e.g. ``"memory"``, ``"mshr-full"``). Called only when an
        observer is attached (or for a deadlock post-mortem), strictly
        after :meth:`tick` — implementations must read state, never
        mutate it, so instrumentation cannot perturb timing.
        """
        return (OBS_BUSY, None) if self.is_busy() else (OBS_IDLE, None)

    def obs_children(self, cycle: int):
        """Per-subunit attribution for components that own inner tiles.

        Yields ``(name, state, reason)`` triples; the observer keeps a
        separate ledger (and trace track) per subunit name.
        """
        return ()

    def __repr__(self):
        return f"<{type(self).__name__} {self.name}>"
