"""Differential property tests: the accelerator, the CPU baseline and a
Python oracle must agree on randomly generated programs.

This is the strongest correctness statement in the suite: for arbitrary
expression trees and for randomly-parameterised parallel maps, the full
HLS flow (frontend -> IR -> task units -> cycle simulation through the
cache) computes exactly what the semantics say.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.accel import build_accelerator
from repro.baselines import MulticoreCPU
from repro.frontend import compile_source
from repro.ir.types import I32
from repro.memory.backing import MainMemory

# -- random expression generation -------------------------------------------

_BIN = ["+", "-", "*", "&", "|", "^"]


@st.composite
def expr_trees(draw, depth=0):
    """A random i32 expression over variables a, b, c."""
    if depth >= 3 or draw(st.booleans()):
        leaf = draw(st.sampled_from(["a", "b", "c", "lit"]))
        if leaf == "lit":
            return str(draw(st.integers(0, 1000)))
        return leaf
    op = draw(st.sampled_from(_BIN))
    lhs = draw(expr_trees(depth=depth + 1))
    rhs = draw(expr_trees(depth=depth + 1))
    return f"({lhs} {op} {rhs})"


def oracle_eval(expr: str, env: dict) -> int:
    """Evaluate with i32 wrap-around semantics."""
    node = compile(expr, "<expr>", "eval")

    def run(value):
        return value

    raw = eval(node, {}, dict(env))  # operators all map to Python's
    return I32.wrap(raw)


class TestExpressionDifferential:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(expr_trees(),
           st.integers(-1000, 1000), st.integers(-1000, 1000),
           st.integers(-1000, 1000))
    def test_accelerator_cpu_and_oracle_agree(self, expr, a, b, c):
        source = f"""
        func f(a: i32, b: i32, c: i32) -> i32 {{
          return {expr};
        }}
        """
        expected = oracle_eval(expr, {"a": a, "b": b, "c": c})

        module = compile_source(source, "diff")
        accel = build_accelerator(module)
        accel_result = accel.run("f", [a, b, c])
        assert accel_result.retval == expected

        cpu = MulticoreCPU(compile_source(source, "diff_cpu"),
                           MainMemory(1 << 16))
        cpu_result = cpu.run("f", [a, b, c])
        assert cpu_result.retval == expected


class TestParallelMapDifferential:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(expr_trees(),
           st.lists(st.integers(-500, 500), min_size=1, max_size=24),
           st.integers(-100, 100))
    def test_parallel_map_matches_oracle(self, expr, data, k):
        """cilk_for over a[i] with a random body expression: the
        accelerator's memory image must equal the oracle map."""
        body = expr.replace("a", "a[i]").replace("b", "i").replace("c", str(k))
        source = f"""
        func f(a: i32*, n: i32) {{
          cilk_for (var i: i32 = 0; i < n; i = i + 1) {{
            a[i] = {body};
          }}
        }}
        """
        expected = [oracle_eval(expr, {"a": v, "b": i, "c": k})
                    for i, v in enumerate(data)]

        module = compile_source(source, "pmap")
        accel = build_accelerator(module)
        base = accel.memory.alloc_array(I32, data)
        accel.run("f", [base, len(data)])
        assert accel.memory.read_array(base, I32, len(data)) == expected

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.integers(-500, 500), min_size=1, max_size=16))
    def test_reduction_through_spawn_results(self, data):
        """Recursive divide-and-conquer sum via spawn-result frames must
        equal Python's sum, wrapped."""
        source = """
        func rsum(a: i32*, lo: i32, hi: i32) -> i32 {
          if (hi - lo == 1) { return a[lo]; }
          var mid: i32 = lo + (hi - lo) / 2;
          var left: i32 = spawn rsum(a, lo, mid);
          var right: i32 = spawn rsum(a, mid, hi);
          sync;
          return left + right;
        }
        """
        module = compile_source(source, "rsum")
        accel = build_accelerator(module)
        base = accel.memory.alloc_array(I32, data)
        result = accel.run("rsum", [base, 0, len(data)])
        assert result.retval == I32.wrap(sum(data))
