"""The paper's Fig 5 scenario: watching the nested-loop accelerator run.

Fig 5 walks the execution of the matrix-add accelerator: T0 spawning T1
instances, T1 instances spawning T2 bodies, children joining back and
parents moving SYNC -> COMPLETE. This example regenerates that view from
a real simulation: the spawn/complete timeline per unit, the task-queue
peaks, and tile utilisation.

Run:  python examples/execution_trace.py
"""

from repro.accel import build_accelerator
from repro.reports import execution_timeline, task_graph_dot, utilization_summary
from repro.sim import Trace
from repro.workloads import MatrixAdd


def main():
    workload = MatrixAdd()
    trace = Trace(enabled=True)
    accel = build_accelerator(workload.fresh_module(),
                              workload.default_config(ntiles=2),
                              trace=trace)
    prepared = workload.prepare(accel.memory, scale=1)
    result = accel.run(prepared.function, prepared.args)
    assert prepared.check(accel.memory, result.retval)

    print("=== The task graph (GraphViz DOT, paper Fig 3) ===")
    from repro.accel import generate

    print(task_graph_dot(generate(workload.fresh_module()).graph))

    print("\n=== Execution timeline (paper Fig 5's dynamic view) ===")
    print(execution_timeline(trace, result.cycles))

    print("\n=== Tile utilisation ===")
    print(utilization_summary(result.stats, result.cycles))

    print("\n=== Task-queue behaviour ===")
    for name, unit in result.stats["units"].items():
        queue = unit["queue"]
        print(f"{name:24s} allocated={queue['total_allocated']:>4} "
              f"peak={queue['peak_occupancy']:>3} of {queue['depth']}")

    t0 = result.stats["units"]["T0:matrix_add"]
    t1 = result.stats["units"]["T1:matrix_add.t0"]
    t2 = result.stats["units"]["T2:matrix_add.t0.t0"]
    n = 8
    print(f"\nFig 5's arithmetic: T0 ran {t0['completed']} instance, "
          f"T1 ran {t1['completed']} (one per outer iteration), "
          f"T2 ran {t2['completed']} (= N^2 = {n * n} bodies)")


if __name__ == "__main__":
    main()
