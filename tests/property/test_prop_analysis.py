"""Soundness of the static race analysis, property-tested.

Random fork-join programs — a ``cilk_for`` whose body does a random mix
of disjoint (``a[i]``), shifted (``a[i+k]``) and shared (``a[k]``)
accesses — are analyzed statically and then executed on the accelerator
with the dynamic checker tracing every shared-memory access. The
property: **no dynamic determinacy race may escape the static analysis**
(``cross_validate(...).sound``). False positives are allowed (the affine
model is conservative); false negatives are analyzer bugs.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.accel import AcceleratorConfig, build_accelerator
from repro.analysis.dynamic import cross_validate
from repro.analysis.races import find_races
from repro.frontend import compile_source
from repro.ir.types import I32
from repro.sim.trace import Trace

ARRAY_LEN = 8


@st.composite
def body_statements(draw):
    """Random loop-body accesses over a[] — some racy, some not."""
    statements = []
    for _ in range(draw(st.integers(1, 3))):
        kind = draw(st.sampled_from(["own", "own", "shift", "fixed"]))
        if kind == "own":
            statements.append(f"a[i] = a[i] + {draw(st.integers(1, 9))};")
        elif kind == "shift":
            offset = draw(st.integers(1, 2))
            # neighbour access: races with the adjacent instance
            statements.append(f"a[i] = a[i + {offset}] + 1;")
        else:
            cell = draw(st.integers(0, ARRAY_LEN - 1))
            if draw(st.booleans()):
                statements.append(f"a[{cell}] = a[{cell}] + 1;")
            else:
                statements.append(f"a[i] = a[i] + a[{cell}];")
    return statements


@st.composite
def programs(draw):
    body = "\n        ".join(draw(body_statements()))
    trips = ARRAY_LEN - 2  # keep a[i + 2] in bounds
    return f"""
    func kernel(a: i32*) {{
      cilk_for (var i: i32 = 0; i < {trips}; i = i + 1) {{
        {body}
      }}
    }}
    """


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(source=programs(), seed=st.integers(0, 2**31 - 1))
def test_no_dynamic_race_escapes_the_static_analysis(source, seed):
    module = compile_source(source, "prop_kernel")
    trace = Trace(enabled=True)
    acc = build_accelerator(module, AcceleratorConfig(default_ntiles=2),
                            trace=trace)
    rng_values = [(seed * 7 + i * 13) % 100 for i in range(ARRAY_LEN)]
    base = acc.memory.alloc_array(I32, rng_values)
    acc.run("kernel", [base])

    findings, _unresolved = find_races(acc.design.graph)
    outcome = cross_validate(findings, trace, acc.design.graph)
    assert outcome.sound, (
        "dynamic race missed by the static analysis:\n"
        + "\n".join(c.describe() for c in outcome.missed)
        + f"\nprogram:\n{source}")


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_disjoint_only_programs_are_race_free_both_ways(data):
    """Programs whose instances each touch only a[i] must be statically
    clean AND dynamically conflict-free."""
    count = data.draw(st.integers(1, 3))
    increments = [data.draw(st.integers(1, 9)) for _ in range(count)]
    body = "\n        ".join(f"a[i] = a[i] + {inc};" for inc in increments)
    source = f"""
    func kernel(a: i32*) {{
      cilk_for (var i: i32 = 0; i < {ARRAY_LEN}; i = i + 1) {{
        {body}
      }}
    }}
    """
    module = compile_source(source, "prop_clean")
    trace = Trace(enabled=True)
    acc = build_accelerator(module, AcceleratorConfig(default_ntiles=2),
                            trace=trace)
    base = acc.memory.alloc_array(I32, list(range(ARRAY_LEN)))
    acc.run("kernel", [base])

    findings, _ = find_races(acc.design.graph)
    assert findings == []
    assert trace.race_check(acc.design.graph) == []
    expected = [v + sum(increments) for v in range(ARRAY_LEN)]
    assert acc.memory.read_array(base, I32, ARRAY_LEN) == expected
