"""Matrix addition: the paper's Fig 3 running example (nested cilk_for)."""

from __future__ import annotations

import random

from repro.ir.types import I32
from repro.workloads.base import PreparedRun, Workload


class MatrixAdd(Workload):
    name = "matrix_add"
    entry = "matrix_add"
    challenge = "Nested loops"
    memory_pattern = "Regular"
    paper_tiles = 3  # Table IV

    source = """
    // C[i][j] = A[i][j] + B[i][j] over N x N (paper Fig 3)
    func matrix_add(A: i32*, B: i32*, C: i32*, N: i32) {
      cilk_for (var i: i32 = 0; i < N; i = i + 1) {
        cilk_for (var j: i32 = 0; j < N; j = j + 1) {
          C[i * N + j] = A[i * N + j] + B[i * N + j];
        }
      }
    }
    """

    def default_n(self, scale: int) -> int:
        return 8 * scale

    def prepare(self, memory, scale: int = 1) -> PreparedRun:
        n = self.default_n(scale)
        rng = random.Random(42)
        a = [rng.randrange(-1000, 1000) for _ in range(n * n)]
        b = [rng.randrange(-1000, 1000) for _ in range(n * n)]
        expected = [x + y for x, y in zip(a, b)]
        base_a = memory.alloc_array(I32, a)
        base_b = memory.alloc_array(I32, b)
        base_c = memory.alloc_array(I32, [0] * (n * n))

        def check(mem, _retval):
            return mem.read_array(base_c, I32, n * n) == expected

        return PreparedRun(self.entry, [base_a, base_b, base_c, n],
                           check, work_items=n * n)
