"""Experiment infrastructure: declarative sweeps, parallel execution,
content-addressed result caching.

Every benchmark is a *sweep*: a grid of (workload, config, scale,
engine) points evaluated independently. This package turns that shape
into infrastructure:

* :func:`expand_grid` / :func:`workload_points` — declarative grid
  expansion into plain-JSON point specs,
* :class:`SweepRunner` — fans the points out over worker processes with
  per-job failure isolation and deterministic result ordering,
* :class:`ResultCache` — a content-addressed on-disk cache keyed by
  hash(program text + canonical config + repro version), so re-runs of
  unchanged points are near-instant and interrupted sweeps resume.
"""

from repro.exp.cache import (
    ResultCache,
    canonical_json,
    code_fingerprint,
    default_cache_dir,
)
from repro.exp.grid import config_from_spec, expand_grid, workload_points
from repro.exp.runner import (
    SweepResult,
    SweepRunner,
    get_evaluator,
    progress_printer,
    register_evaluator,
)

__all__ = [
    "ResultCache", "canonical_json", "code_fingerprint", "default_cache_dir",
    "config_from_spec", "expand_grid", "workload_points",
    "SweepResult", "SweepRunner", "get_evaluator", "progress_printer",
    "register_evaluator",
]
