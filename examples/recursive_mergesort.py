"""The paper's Fig 11 scenario: recursively parallel mergesort.

Recursion is the pattern HLS tools traditionally reject (no program
stack). TAPAS handles it with dynamic task spawning: a task unit spawns
*itself*, return values travel through per-instance frames in the shared
cache, and a LIFO (work-first) dispatch policy keeps the live spawn tree
bounded.

Run:  python examples/recursive_mergesort.py
"""

import random

from repro.accel import AcceleratorConfig, TaskUnitParams
from repro.ir.types import I32
from repro.workloads import Mergesort, Fibonacci, fib_reference


def sort_demo():
    workload = Mergesort()
    accel = workload.build()
    rng = random.Random(99)
    data = [rng.randrange(-500, 500) for _ in range(64)]
    base = accel.memory.alloc_array(I32, data)
    result = accel.run("mergesort", [base, 0, len(data) - 1])
    sorted_out = accel.memory.read_array(base, I32, len(data))

    print("=== Recursive mergesort (paper Fig 11) ===")
    print(f"input (first 12) : {data[:12]}")
    print(f"output (first 12): {sorted_out[:12]}")
    print(f"sorted correctly : {sorted_out == sorted(data)}")
    print(f"cycles           : {result.cycles}")
    ms_unit = result.stats["units"]["T1:mergesort"]
    print(f"dynamic mergesort tasks: {ms_unit['completed']} "
          f"(= 2*64-1 = {2*64-1} nodes of the recursion tree)")
    print(f"peak live tasks in queue: {ms_unit['queue']['peak_occupancy']} "
          "(LIFO dispatch keeps the tree shallow)")


def fib_demo():
    print("\n=== Recursive fib: return values through the shared cache ===")
    workload = Fibonacci()
    # explicit Stage-3 parameterisation: 4 tiles, a 1024-deep queue
    config = AcceleratorConfig(unit_params={
        "fib": TaskUnitParams(ntiles=4, queue_depth=1024)})
    accel = workload.build(config)
    n = 14
    result = accel.run("fib", [n])
    print(f"fib({n}) = {result.retval} (expected {fib_reference(n)})")
    unit = accel.units[0]
    print(f"frame region: {unit.frame_size} bytes/instance "
          f"(two spawn-result slots), base address {unit.frame_base}")
    print(f"cycles: {result.cycles}, "
          f"dynamic tasks: {result.stats['units']['T0:fib']['completed']}")


if __name__ == "__main__":
    sort_demo()
    fib_demo()
