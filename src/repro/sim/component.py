"""Base class for clocked hardware components."""

from __future__ import annotations


class Component:
    """A clocked block. Once per cycle the engine calls :meth:`tick`;
    channel reads inside tick observe start-of-cycle state, so tick order
    between components never changes behaviour."""

    def __init__(self, name: str):
        self.name = name
        self.sim = None  # set on registration

    def tick(self, cycle: int):
        """Do one cycle of work: read input channels, update internal
        state, push output channels."""

    def is_busy(self) -> bool:
        """True while the component holds in-flight work that will make
        progress without new channel traffic (e.g. a DRAM access counting
        down). Used by deadlock detection."""
        return False

    def stats(self) -> dict:
        """Per-component statistics merged into the simulation report."""
        return {}

    def __repr__(self):
        return f"<{type(self).__name__} {self.name}>"
