"""IR verifier: structural and dominance checks before synthesis.

The toolchain runs this after frontend lowering and after every transform,
the same role ``opt -verify`` plays in LLVM. Violations are collected and
raised together as a :class:`~repro.errors.VerificationError`.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import VerificationError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Call,
    Detach,
    Instruction,
    Reattach,
    Ret,
    Sync,
)
from repro.ir.module import Module
from repro.ir.values import Argument, Constant, GlobalVariable


def _compute_dominators(function: Function) -> Dict[BasicBlock, Set[BasicBlock]]:
    """Iterative dataflow dominator computation (small CFGs, clarity first)."""
    blocks = function.blocks
    if not blocks:
        return {}
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in blocks}
    for block in blocks:
        for succ in block.successors():
            if succ in preds:  # foreign targets are reported, not crashed on
                preds[succ].append(block)
    entry = function.entry
    dom: Dict[BasicBlock, Set[BasicBlock]] = {
        b: ({entry} if b is entry else set(blocks)) for b in blocks
    }
    changed = True
    while changed:
        changed = False
        for block in blocks:
            if block is entry:
                continue
            pred_doms = [dom[p] for p in preds[block]]
            new = set.intersection(*pred_doms) if pred_doms else set()
            new = new | {block}
            if new != dom[block]:
                dom[block] = new
                changed = True
    return dom


class Verifier:
    """Collects problems across a module; raise with :meth:`check`."""

    def __init__(self):
        self.problems: List[str] = []

    def note(self, where: str, message: str):
        self.problems.append(f"{where}: {message}")

    def verify_module(self, module: Module) -> "Verifier":
        names = set()
        for function in module.functions:
            if function.name in names:
                self.note(module.name, f"duplicate function {function.name}")
            names.add(function.name)
            self.verify_function(function, module)
        return self

    def verify_function(self, function: Function, module: Module = None) -> "Verifier":
        where = f"function {function.name}"
        if not function.blocks:
            self.note(where, "has no basic blocks")
            return self

        block_set = set(function.blocks)
        for block in function.blocks:
            self._verify_block_shape(function, block, block_set, module)

        self._verify_defs_dominate_uses(function)
        self._verify_parallel_structure(function)
        return self

    # -- individual checks -----------------------------------------------------

    def _verify_block_shape(self, function, block, block_set, module):
        where = f"{function.name}:{block.name}"
        if not block.instructions:
            self.note(where, "is empty")
            return
        term = block.instructions[-1]
        if not term.is_terminator():
            self.note(where, "does not end in a terminator")
        for inst in block.instructions[:-1]:
            if inst.is_terminator():
                self.note(where, f"terminator {inst.opcode} before end of block")
        for succ in block.successors():
            if succ not in block_set:
                self.note(where, f"successor {succ.name} not in function")
        if isinstance(term, Ret):
            want = function.return_type
            if term.value is None:
                if not want.is_void():
                    self.note(where, "ret missing value")
            elif term.value.type != want:
                self.note(where, f"ret type {term.value.type!r} != {want!r}")
        if isinstance(term, Detach):
            if term.detached not in block_set:
                self.note(where,
                          f"detach target {term.detached.name} is not a block "
                          "of the function")
            if term.detached is term.continuation:
                self.note(where, "detach with identical detached/continuation block")
        for inst in block.instructions:
            if isinstance(inst, Call) and module is not None:
                if module.function(inst.callee.name) is not inst.callee:
                    self.note(where, f"call to {inst.callee.name} outside module")

    def _verify_defs_dominate_uses(self, function):
        dom = _compute_dominators(function)
        positions = {}
        for block in function.blocks:
            for i, inst in enumerate(block.instructions):
                positions[inst] = (block, i)
        for block in function.blocks:
            for i, inst in enumerate(block.instructions):
                for op in inst.operands:
                    if op is None or isinstance(op, (Constant, Argument, GlobalVariable)):
                        continue
                    if not isinstance(op, Instruction):
                        self.note(f"{function.name}:{block.name}",
                                  f"operand of {inst.opcode} is not a value: {op!r}")
                        continue
                    loc = positions.get(op)
                    if loc is None:
                        self.note(f"{function.name}:{block.name}",
                                  f"{inst.opcode} uses value from another function")
                        continue
                    def_block, def_index = loc
                    if def_block is block:
                        if def_index >= i:
                            self.note(f"{function.name}:{block.name}",
                                      f"{inst.opcode} uses {op.short()} before definition")
                    elif def_block not in dom.get(block, set()):
                        self.note(f"{function.name}:{block.name}",
                                  f"{inst.opcode} use of {op.short()} not dominated "
                                  f"by its definition in {def_block.name}")

    def _verify_parallel_structure(self, function):
        """Each detach's detached region must reach a reattach to the
        detach's continuation, and reattaches must match some detach."""
        detach_continuations = set()
        for block in function.blocks:
            term = block.terminator
            if isinstance(term, Detach):
                detach_continuations.add(term.continuation)
                # walk the detached region: blocks reachable from term.detached
                # without passing through the continuation.
                seen = set()
                stack = [term.detached]
                found_reattach = False
                while stack:
                    current = stack.pop()
                    if current in seen or current is term.continuation:
                        continue
                    seen.add(current)
                    inner = current.terminator
                    if isinstance(inner, Reattach):
                        if inner.continuation is term.continuation:
                            found_reattach = True
                        continue
                    if isinstance(inner, Ret):
                        self.note(f"{function.name}:{current.name}",
                                  "ret inside detached region")
                        continue
                    stack.extend(current.successors())
                if not found_reattach:
                    self.note(f"{function.name}:{block.name}",
                              "detached region never reattaches to continuation")
                # a sync inside the detached region must stay inside it: the
                # only way control leaves a detached region is the reattach.
                # (A sync is fine *within* the region — the child task waits
                # for its own children — but its continuation may not escape.)
                for region_block in seen:
                    inner = region_block.terminator
                    if isinstance(inner, Sync) and (
                            inner.continuation is term.continuation
                            or inner.continuation not in seen):
                        self.note(f"{function.name}:{region_block.name}",
                                  "sync escapes its detached region "
                                  "(regions must close with reattach)")
        for block in function.blocks:
            term = block.terminator
            if isinstance(term, Reattach) and term.continuation not in detach_continuations:
                self.note(f"{function.name}:{block.name}",
                          "reattach with no matching detach")
            if isinstance(term, Sync) and term.continuation not in set(function.blocks):
                self.note(f"{function.name}:{block.name}",
                          "sync continuation not in function")

    # -- outcome ------------------------------------------------------------

    def check(self):
        if self.problems:
            raise VerificationError(self.problems)


def verify_module(module: Module):
    """Verify a whole module; raises VerificationError on any problem."""
    Verifier().verify_module(module).check()


def verify_function(function: Function):
    """Verify a single function; raises VerificationError on any problem."""
    Verifier().verify_function(function).check()
