"""Tests for CFG utilities and dominator analysis."""

from repro.ir import Function, IRBuilder, const
from repro.ir.types import I32, VOID
from repro.passes import (
    compute_dominators,
    post_order,
    predecessor_map,
    reachable_blocks,
    reverse_post_order,
)

from tests.irprograms import build_scale_module


def build_diamond():
    f = Function("diamond", [I32], ["x"], VOID)
    entry = f.add_block("entry")
    left = f.add_block("left")
    right = f.add_block("right")
    join = f.add_block("join")
    b = IRBuilder(entry)
    c = b.icmp("slt", f.arguments[0], const(0))
    b.condbr(c, left, right)
    b.position_at_end(left)
    b.br(join)
    b.position_at_end(right)
    b.br(join)
    b.position_at_end(join)
    b.ret()
    return f, entry, left, right, join


class TestCFG:
    def test_predecessors_of_diamond(self):
        f, entry, left, right, join = build_diamond()
        preds = predecessor_map(f)
        assert preds[entry] == []
        assert preds[left] == [entry]
        assert preds[right] == [entry]
        assert set(preds[join]) == {left, right}

    def test_reachability(self):
        f, entry, *_ = build_diamond()
        unreachable = f.add_block("dead")
        IRBuilder(unreachable).ret()
        reach = reachable_blocks(entry)
        assert unreachable not in reach
        assert len(reach) == 4

    def test_rpo_starts_at_entry_and_respects_edges(self):
        f, entry, left, right, join = build_diamond()
        rpo = reverse_post_order(f)
        assert rpo[0] is entry
        assert rpo.index(join) > rpo.index(left)
        assert rpo.index(join) > rpo.index(right)

    def test_post_order_is_reversed_rpo(self):
        f, *_ = build_diamond()
        assert post_order(f) == list(reversed(reverse_post_order(f)))

    def test_rpo_handles_loops(self):
        m = build_scale_module()
        f = m.function("scale")
        rpo = reverse_post_order(f)
        assert rpo[0] is f.entry
        assert len(rpo) == len(f.blocks)  # all blocks reachable


class TestDominators:
    def test_entry_dominates_everything(self):
        f, entry, left, right, join = build_diamond()
        dom = compute_dominators(f)
        for block in (entry, left, right, join):
            assert dom.dominates(entry, block)

    def test_branches_do_not_dominate_join(self):
        f, entry, left, right, join = build_diamond()
        dom = compute_dominators(f)
        assert not dom.dominates(left, join)
        assert not dom.dominates(right, join)

    def test_idom_of_join_is_entry(self):
        f, entry, left, right, join = build_diamond()
        dom = compute_dominators(f)
        assert dom.idom[join] is entry
        assert dom.idom[left] is entry
        assert dom.idom[entry] is None

    def test_loop_header_dominates_body(self):
        m = build_scale_module()
        f = m.function("scale")
        dom = compute_dominators(f)
        cond = f.block("cond")
        body = f.block("body")
        latch = f.block("latch")
        assert dom.dominates(cond, body)
        assert dom.dominates(cond, latch)
        assert not dom.dominates(body, cond)

    def test_dominance_is_reflexive(self):
        f, entry, *_ = build_diamond()
        dom = compute_dominators(f)
        assert dom.dominates(entry, entry)
        assert not dom.strictly_dominates(entry, entry)
