"""Run registry: append/load round-trip, series diffing, regressions."""

import json

import pytest

from repro.telemetry.history import (
    HISTORY_RECORD_KEYS,
    append_run,
    config_fingerprint,
    diff_history,
    load_history,
    run_record,
    series_key,
)


def _record(name="saxpy", cycles=1000, ts=1.0, engine="event",
            config=None, **kwargs):
    return run_record("run", name, engine=engine, cycles=cycles,
                      config=config or {"tiles": 2}, ts=ts, **kwargs)


def test_record_carries_every_key():
    record = _record(host_seconds=0.5, sim_cycles_per_host_second=2000.0)
    assert set(HISTORY_RECORD_KEYS) == set(record)
    assert record["schema"] == 1
    assert record["fingerprint"] == config_fingerprint({"tiles": 2})


def test_append_load_round_trip(tmp_path):
    first = append_run(_record(ts=1.0), tmp_path)
    second = append_run(_record(ts=2.0, cycles=1100), tmp_path)
    assert first["seq"] == 0 and second["seq"] == 1
    assert first["path"] == second["path"]
    records = load_history(tmp_path)
    assert [r["cycles"] for r in records] == [1000, 1100]


def test_loader_skips_corrupt_lines(tmp_path):
    append_run(_record(ts=1.0), tmp_path)
    path = tmp_path / "runs.jsonl"
    with open(path, "a") as handle:
        handle.write("{half a json line\n")
        handle.write(json.dumps({"schema": 99, "alien": True}) + "\n")
    append_run(_record(ts=2.0), tmp_path)
    records = load_history(tmp_path)
    assert len(records) == 2  # corrupt + foreign-schema lines skipped


def test_missing_registry_is_empty(tmp_path):
    assert load_history(tmp_path / "nowhere") == []


def test_series_key_separates_configs():
    a = _record(config={"tiles": 2})
    b = _record(config={"tiles": 4})
    assert series_key(a) != series_key(b)
    assert series_key(a) == series_key(_record(config={"tiles": 2}))


def test_diff_flags_injected_regression():
    """The acceptance path: a >=10% cycle increase between two recorded
    runs of the same series is flagged."""
    records = [_record(ts=1.0, cycles=1000),
               _record(ts=2.0, cycles=1150)]
    (diff,) = diff_history(records, threshold=0.10)
    assert diff["old"] == 1000 and diff["new"] == 1150
    assert diff["drift"] == pytest.approx(0.15)
    assert diff["regression"] is True


def test_diff_below_threshold_not_flagged():
    records = [_record(ts=1.0, cycles=1000),
               _record(ts=2.0, cycles=1050)]
    (diff,) = diff_history(records, threshold=0.10)
    assert diff["regression"] is False


def test_diff_improvement_reported_not_flagged():
    records = [_record(ts=1.0, cycles=1000),
               _record(ts=2.0, cycles=800)]
    (diff,) = diff_history(records, threshold=0.10)
    assert diff["drift"] == pytest.approx(-0.2)
    assert diff["regression"] is False


def test_diff_throughput_metric_inverts_direction():
    """Lower cycles/second is worse: the drift sign is normalised so a
    positive drift always reads 'got worse'."""
    records = [_record(ts=1.0, sim_cycles_per_host_second=1000.0),
               _record(ts=2.0, sim_cycles_per_host_second=800.0)]
    (diff,) = diff_history(records, threshold=0.10,
                           metric="sim_cycles_per_host_second")
    assert diff["drift"] == pytest.approx(0.2)
    assert diff["regression"] is True


def test_diff_never_crosses_series():
    records = [_record(name="a", ts=1.0, cycles=100),
               _record(name="b", ts=2.0, cycles=9000)]
    assert diff_history(records) == []


def test_diff_rejects_unknown_metric():
    with pytest.raises(ValueError):
        diff_history([], metric="nope")


def test_cli_history_round_trip(tmp_path, capsys):
    """repro history lists, diffs and exits non-zero on regression."""
    from repro.cli import main

    append_run(_record(ts=1.0, cycles=1000), tmp_path)
    append_run(_record(ts=2.0, cycles=1300), tmp_path)

    assert main(["history", "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "saxpy" in out and "1300" in out

    assert main(["history", "--dir", str(tmp_path), "--diff"]) == 0
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "+30.0%" in out

    assert main(["history", "--dir", str(tmp_path),
                 "--fail-on-regression"]) == 1

    # a looser threshold lets the same drift pass
    assert main(["history", "--dir", str(tmp_path),
                 "--fail-on-regression", "--threshold", "50"]) == 0
    capsys.readouterr()

    payload = None
    assert main(["history", "--dir", str(tmp_path), "--diff",
                 "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["records"]) == 2
    assert payload["diffs"][0]["regression"] is True
