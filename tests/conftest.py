"""Make the repository root importable so tests can share IR builders."""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
