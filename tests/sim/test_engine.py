"""Tests for the cycle engine, channels and handshake semantics."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import (
    OBS_STALL_OUT,
    Channel,
    Component,
    Simulator,
)
from repro.sim.engine import DEADLOCK_WINDOW, STALL_WINDOW


class Producer(Component):
    """Pushes sequential integers as fast as the channel accepts."""

    def __init__(self, name, out, count):
        super().__init__(name)
        self.out = out
        self.remaining = count
        self.next_value = 0

    def tick(self, cycle):
        if self.remaining > 0 and self.out.can_push():
            self.out.push(self.next_value)
            self.next_value += 1
            self.remaining -= 1


class Consumer(Component):
    def __init__(self, name, inp, stall_every=0):
        super().__init__(name)
        self.inp = inp
        self.received = []
        self.stall_every = stall_every

    def tick(self, cycle):
        if self.stall_every and cycle % self.stall_every == 0:
            return  # backpressure
        if self.inp.can_pop():
            self.received.append(self.inp.pop())


class TestChannel:
    def test_push_visible_next_cycle(self):
        ch = Channel("c", capacity=2)
        ch.push(42)
        assert not ch.can_pop()  # registered: not visible same cycle
        ch.commit()
        assert ch.can_pop()
        assert ch.peek() == 42

    def test_double_push_rejected(self):
        ch = Channel("c")
        ch.push(1)
        with pytest.raises(SimulationError, match="two pushes"):
            ch.push(2)

    def test_double_pop_rejected(self):
        ch = Channel("c")
        ch.push(1)
        ch.commit()
        ch.pop()
        with pytest.raises(SimulationError, match="two pops"):
            ch.pop()

    def test_capacity_enforced(self):
        ch = Channel("c", capacity=1)
        ch.push(1)
        ch.commit()
        assert not ch.can_push()
        with pytest.raises(SimulationError, match="full"):
            ch.push(2)

    def test_pop_frees_slot_next_cycle(self):
        ch = Channel("c", capacity=1)
        ch.push(1)
        ch.commit()
        ch.pop()
        # same cycle: slot not free yet
        assert not ch.can_push()
        ch.commit()
        assert ch.can_push()

    def test_fifo_order(self):
        ch = Channel("c", capacity=4)
        for v in (1, 2, 3):
            ch.push(v)
            ch.commit()
        out = []
        while ch.can_pop():
            out.append(ch.pop())
            ch.commit()
        assert out == [1, 2, 3]

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Channel("c", capacity=0)


class TestSimulator:
    def test_producer_consumer_delivers_everything_in_order(self):
        sim = Simulator()
        ch = sim.add_channel("pc", capacity=2)
        sim.add_component(Producer("p", ch, count=50))
        consumer = sim.add_component(Consumer("c", ch))
        sim.run(lambda: len(consumer.received) == 50, max_cycles=1000)
        assert consumer.received == list(range(50))

    def test_backpressure_slows_but_preserves_data(self):
        sim = Simulator()
        ch = sim.add_channel("pc", capacity=1)
        sim.add_component(Producer("p", ch, count=30))
        consumer = sim.add_component(Consumer("c", ch, stall_every=2))
        cycles = sim.run(lambda: len(consumer.received) == 30, max_cycles=5000)
        assert consumer.received == list(range(30))
        assert cycles > 30  # stalls cost time

    def test_throughput_one_per_cycle_when_unblocked(self):
        sim = Simulator()
        ch = sim.add_channel("pc", capacity=4)
        sim.add_component(Producer("p", ch, count=100))
        consumer = sim.add_component(Consumer("c", ch))
        cycles = sim.run(lambda: len(consumer.received) == 100, max_cycles=1000)
        # 1 item/cycle steady state plus small pipeline fill
        assert cycles <= 105

    def test_deadlock_detected(self):
        sim = Simulator()
        ch = sim.add_channel("pc", capacity=1)
        sim.add_component(Consumer("c", ch))  # nothing ever arrives
        with pytest.raises(DeadlockError):
            sim.run(lambda: False, max_cycles=DEADLOCK_WINDOW * 3)

    def test_timeout_raises(self):
        class Spinner(Component):
            def tick(self, cycle):
                pass

            def is_busy(self):
                return True  # always "working", never done

        sim = Simulator()
        sim.add_component(Spinner("s"))
        with pytest.raises(SimulationError, match="exceeded"):
            sim.run(lambda: False, max_cycles=100)

    def test_deadlock_postmortem_names_stuck_component_and_channel(self):
        """DEADLOCK_WINDOW case: idle deadlock — a producer blocked on a
        full channel nobody drains. The post-mortem must name the actual
        stuck component (with its stall reason) and the stuck channel."""

        class BlockedWriter(Component):
            def __init__(self, name, out):
                super().__init__(name)
                self.out = out

            def tick(self, cycle):
                if self.out.can_push():
                    self.out.push("x")

            def obs_classify(self, cycle):
                if not self.out.can_push():
                    return OBS_STALL_OUT, "sink-full"
                return "busy", None

        sim = Simulator()
        ch = sim.add_channel("w.out", capacity=1)  # filled, never drained
        sim.add_component(BlockedWriter("w", ch))
        with pytest.raises(DeadlockError) as excinfo:
            sim.run(lambda: False, max_cycles=DEADLOCK_WINDOW * 3)
        err = excinfo.value
        assert err.postmortem is not None
        stalled = {c["name"]: c for c in err.postmortem["stalled"]}
        assert stalled["w"]["state"] == OBS_STALL_OUT
        assert stalled["w"]["reason"] == "sink-full"
        stuck = {ch_["name"]: ch_ for ch_ in err.postmortem["channels"]}
        assert stuck["w.out"]["occupancy"] == 1
        assert stuck["w.out"]["capacity"] == 1
        # and the human-readable message carries the same attribution
        assert "w[stall_out:sink-full]" in str(err)
        assert "w.out(1/1)" in str(err)

    def test_livelock_postmortem_names_stuck_component_and_channel(self):
        """STALL_WINDOW case: a component stays busy (so the idle-deadlock
        window never fires) while retrying a push into a full channel —
        no channel ever moves. The livelock detector must fire and the
        post-mortem must attribute the stall."""

        class BusyRetrier(Component):
            def __init__(self, name, out):
                super().__init__(name)
                self.out = out

            def tick(self, cycle):
                if self.out.can_push():
                    self.out.push("x")

            def is_busy(self):
                return True  # always claims work in flight

            def obs_classify(self, cycle):
                if not self.out.can_push():
                    return OBS_STALL_OUT, "retry-full"
                return "busy", None

        sim = Simulator()
        ch = sim.add_channel("r.out", capacity=1)
        sim.add_component(BusyRetrier("r", ch))
        with pytest.raises(DeadlockError, match="livelock") as excinfo:
            sim.run(lambda: False, max_cycles=STALL_WINDOW * 2)
        err = excinfo.value
        assert err.cycle > STALL_WINDOW  # outlived the idle window
        stalled = {c["name"]: c for c in err.postmortem["stalled"]}
        assert stalled["r"]["reason"] == "retry-full"
        stuck = {ch_["name"] for ch_ in err.postmortem["channels"]}
        assert "r.out" in stuck
        assert "r[stall_out:retry-full]" in str(err)

    def test_busy_component_defers_deadlock(self):
        class SlowSource(Component):
            """Delivers one message after a long internal delay."""

            def __init__(self, name, out, delay):
                super().__init__(name)
                self.out = out
                self.delay = delay

            def tick(self, cycle):
                if self.delay > 0:
                    self.delay -= 1
                elif self.delay == 0 and self.out.can_push():
                    self.out.push("late")
                    self.delay = -1

            def is_busy(self):
                return self.delay > 0

        sim = Simulator()
        ch = sim.add_channel("pc", capacity=1)
        sim.add_component(SlowSource("s", ch, delay=DEADLOCK_WINDOW + 100))
        consumer = sim.add_component(Consumer("c", ch))
        sim.run(lambda: consumer.received == ["late"],
                max_cycles=DEADLOCK_WINDOW * 3)
