"""Table V: Intel HLS vs TAPAS on the two statically-parallel kernels.

Paper result (Cyclone V, 270 ns DRAM, unroll 3 vs 3 tiles): runtimes are
at parity (image 20 vs 21 ms, saxpy 103 vs 99 ms) and ALM/MHz are
comparable, but the block-RAM split differs sharply — Intel HLS burns
38-67 M20Ks on LSU stream buffers while TAPAS uses ~10-11 (a shared 16K
L1 plus task queues).

For the TAPAS side the designer picks a sensible grain (8-element
chunks), exactly as the paper's authors configure their runs; both flows
then hit the same DRAM bandwidth wall, which is where the parity comes
from.
"""

import sweeplib

from repro.accel import CYCLONE_V, AcceleratorConfig, build_accelerator
from repro.baselines import IMAGE_SCALE_SPEC, SAXPY_SPEC, synthesize_static
from repro.exp import register_evaluator
from repro.frontend import compile_source
from repro.ir.opsem import eval_binop, to_f32
from repro.ir.types import F32, I32
from repro.reports import (
    estimate_mhz,
    estimate_resources,
    render_table,
    sweep_record,
)

UNROLL = 3
TILES = 3
N_ELEMENTS = 4096
CHUNK = 8

SAXPY_CHUNKED = """
func saxpy(a: f32, x: f32*, y: f32*, n: i32) {
  cilk_for (var c: i32 = 0; c < n; c = c + 8) {
    for (var k: i32 = 0; k < 8; k = k + 1) {
      y[c + k] = a * x[c + k] + y[c + k];
    }
  }
}
"""

IMAGE_CHUNKED = """
// 2x horizontal upscale, chunked by 8 output pixels per task
func image_scale(in: i32*, out: i32*, n: i32) {
  cilk_for (var c: i32 = 0; c < n; c = c + 8) {
    for (var k: i32 = 0; k < 8; k = k + 1) {
      var x: i32 = c + k;
      var sx: i32 = x / 2;
      var v: i32 = in[sx];
      if (x % 2 == 1) {
        v = (v + in[sx + 1]) / 2;
      }
      out[x] = v;
    }
  }
}
"""


def run_tapas_saxpy():
    module = compile_source(SAXPY_CHUNKED, "saxpy_t5")
    config = AcceleratorConfig(default_ntiles=TILES)
    accel = build_accelerator(module, config)
    xs = [to_f32(0.25 * i) for i in range(N_ELEMENTS)]
    ys = [to_f32(1.0)] * N_ELEMENTS
    a = 2.5
    base_x = accel.memory.alloc_array(F32, xs)
    base_y = accel.memory.alloc_array(F32, ys)
    result = accel.run("saxpy", [a, base_x, base_y, N_ELEMENTS])
    got = accel.memory.read_array(base_y, F32, N_ELEMENTS)
    expected = [eval_binop("fadd", F32, eval_binop("fmul", F32, a, x), y)
                for x, y in zip(xs, ys)]
    assert got == expected
    return accel, result


def run_tapas_image():
    module = compile_source(IMAGE_CHUNKED, "image_t5")
    config = AcceleratorConfig(default_ntiles=TILES)
    accel = build_accelerator(module, config)
    pixels = [(7 * i) % 256 for i in range(N_ELEMENTS // 2 + 2)]
    base_in = accel.memory.alloc_array(I32, pixels)
    base_out = accel.memory.alloc_array(I32, [0] * N_ELEMENTS)
    result = accel.run("image_scale", [base_in, base_out, N_ELEMENTS])
    got = accel.memory.read_array(base_out, I32, N_ELEMENTS)
    expected = []
    for x in range(N_ELEMENTS):
        sx = x // 2
        v = pixels[sx]
        if x % 2 == 1:
            v = (v + pixels[sx + 1]) // 2
        expected.append(v)
    assert got == expected
    return accel, result


_TAPAS_RUNNERS = {"saxpy": run_tapas_saxpy, "image_scale": run_tapas_image}
_INTEL_SPECS = {"saxpy": SAXPY_SPEC, "image_scale": IMAGE_SCALE_SPEC}


def _eval_table5(spec):
    name = spec["bench"]
    intel = synthesize_static(_INTEL_SPECS[name], iterations=N_ELEMENTS,
                              unroll=UNROLL)
    accel, result = _TAPAS_RUNNERS[name]()
    report = estimate_resources(accel, include_cache=True)
    mhz = estimate_mhz(CYCLONE_V, report.alms)
    return {
        "intel": {"cycles": intel.cycles, "mhz": intel.mhz,
                  "alms": intel.alms, "registers": intel.registers,
                  "brams": intel.brams},
        "tapas_cycles": result.cycles,
        "tapas_mhz": mhz,
        "tapas_alms": report.alms,
        "tapas_regs": report.regs,
        "tapas_brams": report.brams,
    }


register_evaluator("table5_intel_hls", _eval_table5,
                   program_text=sweeplib.file_program_text(__file__))


def test_table5_intel_hls_vs_tapas(benchmark, save_result, save_json,
                                   sweep_runner):
    points = [{"evaluator": "table5_intel_hls", "bench": name,
               "unroll": UNROLL, "tiles": TILES, "elements": N_ELEMENTS}
              for name in ("saxpy", "image_scale")]

    def run():
        return sweeplib.run_points(sweep_runner, points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    data = {record["spec"]["bench"]: record["value"]
            for record in result.records}

    table_rows = []
    for name, d in data.items():
        intel = d["intel"]
        tapas_us = d["tapas_cycles"] / d["tapas_mhz"]
        intel_us = intel["cycles"] / intel["mhz"]
        table_rows.append([name, "Intel HLS", round(intel["mhz"]),
                           intel["alms"], intel["registers"],
                           intel["brams"], round(intel_us, 1)])
        table_rows.append([name, "TAPAS", round(d["tapas_mhz"]),
                           d["tapas_alms"], d["tapas_regs"],
                           d["tapas_brams"], round(tapas_us, 1)])
    text = render_table(
        ["Bench", "Tool", "MHz", "ALMs", "Reg", "BRAM", "us"],
        table_rows,
        title=f"Table V — Intel HLS (unroll {UNROLL}) vs TAPAS "
              f"({TILES} tiles), {N_ELEMENTS} elements")
    save_result("table5_intel_hls", text)
    records = []
    for record in result.records:
        name, d = record["spec"]["bench"], record["value"]
        intel = d["intel"]
        records.append(sweep_record(
            record, name,
            config={"tool": "intel_hls", "unroll": UNROLL,
                    "elements": N_ELEMENTS},
            intel_cycles=intel["cycles"], mhz=round(intel["mhz"]),
            alms=intel["alms"], regs=intel["registers"],
            brams=intel["brams"]))
        records.append(sweep_record(
            record, name,
            config={"tool": "tapas", "tiles": TILES,
                    "elements": N_ELEMENTS},
            tapas_cycles=d["tapas_cycles"], mhz=round(d["tapas_mhz"]),
            alms=d["tapas_alms"], regs=d["tapas_regs"],
            brams=d["tapas_brams"]))
    save_json("table5_intel_hls", records, sweep=result.summary)

    for name, d in data.items():
        intel = d["intel"]
        tapas_seconds = d["tapas_cycles"] / (d["tapas_mhz"] * 1e6)
        intel_seconds = intel["cycles"] / (intel["mhz"] * 1e6)
        ratio = tapas_seconds / intel_seconds
        # paper: runtime parity (20/21 ms and 103/99 ms)
        assert 0.4 < ratio < 2.5, f"{name}: runtime ratio {ratio:.2f}"
        # paper: clocks in the same band (146-181 MHz)
        assert abs(d["tapas_mhz"] - intel["mhz"]) / intel["mhz"] < 0.25
        # paper's signature: the BRAM split. Intel HLS spends 38-67 M20Ks
        # on stream buffers; TAPAS ~10 (L1 + queues).
        assert intel["brams"] > 2.5 * d["tapas_brams"]
        assert d["tapas_brams"] <= 16
