"""Text profile report: where the cycles went.

Renders an :class:`~repro.obs.Observer`'s ledgers into the evaluation's
Table III view — per-unit utilization, per-tile occupancy, the top stall
sources, channel backpressure, and a spawn/sync timeline summary from
the run's trace. The per-component rows are exact: busy + stall_in +
stall_out + idle always sums to the profiled cycle count.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.reports.tables import render_table
from repro.reports.visualize import execution_timeline
from repro.sim.component import OBS_BUSY, OBS_IDLE, OBS_STALL_IN, OBS_STALL_OUT


def _pct(part: int, total: int) -> str:
    return f"{100.0 * part / total:.1f}%" if total else "0.0%"


def _state_row(ledger, total: int):
    b = ledger.breakdown()
    return [ledger.name, ledger.cycles,
            _pct(b[OBS_BUSY], total), _pct(b[OBS_STALL_IN], total),
            _pct(b[OBS_STALL_OUT], total), _pct(b[OBS_IDLE], total)]


def render_profile_report(name: str, total_cycles: int, observer,
                          trace=None, stats: Optional[dict] = None,
                          top: int = 8) -> str:
    """The ``repro profile`` / ``repro run --profile`` text report."""
    sections = [f"Profile: {name} — {total_cycles} cycles "
                f"({observer.cycles_observed} profiled)"]

    units = [ledger for ledger in observer.component_ledgers()
             if ledger.name.startswith("T") and ":" in ledger.name]
    components = observer.component_ledgers()
    rows = [_state_row(ledger, ledger.cycles) for ledger in components]
    sections.append(render_table(
        ["component", "cycles", "busy", "stall_in", "stall_out", "idle"],
        rows, title="Cycle accounting (per component)"))

    tile_rows = []
    for unit in (units or components):
        for tile in observer.tile_ledgers(unit.name):
            tile_rows.append(_state_row(tile, tile.cycles))
    if tile_rows:
        sections.append(render_table(
            ["tile", "cycles", "busy", "stall_in", "stall_out", "idle"],
            tile_rows, title="Tile occupancy"))

    stall_rows = [[component, reason, cycles, _pct(cycles, total_cycles)]
                  for component, reason, cycles
                  in observer.stall_sources()[:top]]
    if stall_rows:
        sections.append(render_table(
            ["component", "stall reason", "cycles", "% of run"],
            stall_rows, title="Top stall sources"))

    channel_rows = [[p.name, p.channel.total_pushed, p.channel.total_popped,
                     p.peak_depth, p.backpressure_cycles,
                     f"{p.mean_occupancy():.2f}"]
                    for p in observer.busiest_channels(top)]
    if channel_rows:
        sections.append(render_table(
            ["channel", "pushed", "popped", "peak", "full cycles", "mean occ"],
            channel_rows, title="Channels (by backpressure)"))

    if trace is not None and len(trace):
        kinds = Counter(e.kind for e in trace.events)
        spawn_summary = ", ".join(f"{k}={n}" for k, n in sorted(kinds.items())
                                  if k in ("spawn-in", "spawn-issue", "complete",
                                           "suspend", "sync-resume", "sync-pass"))
        lines = ["Spawn/sync timeline:"]
        if spawn_summary:
            lines.append("  events: " + spawn_summary)
        per_unit = Counter(e.source for e in trace.events
                           if e.kind == "spawn-in")
        for source, count in sorted(per_unit.items()):
            first = min(e.cycle for e in trace.events
                        if e.source == source and e.kind == "spawn-in")
            done = [e.cycle for e in trace.events
                    if e.source == source and e.kind == "complete"]
            lines.append(f"  {source}: {count} spawns, first at cycle "
                         f"{first}" + (f", last completion at {max(done)}"
                                       if done else ""))
        sections.append("\n".join(lines))
        timeline = execution_timeline(trace, total_cycles)
        sections.append(timeline)

    if stats:
        cache = stats.get("cache")
        if cache and "hit_rate" in cache:
            sections.append(
                f"Memory: {cache.get('loads', 0)} loads, "
                f"{cache.get('stores', 0)} stores, "
                f"{100 * cache['hit_rate']:.1f}% L1 hit rate, "
                f"{cache.get('writebacks', 0)} writebacks")

    return "\n\n".join(sections)


def render_host_profile_report(name: str, profiler,
                               tracer=None) -> str:
    """The ``repro profile --host`` text report: where do host seconds
    go while the simulator runs this design?

    Ranks component *classes* (every instance of e.g. ``TaskUnit``
    aggregated) by host time, then the engine-level phases (channel
    commit, observer, scheduling residual). ``coverage`` is the fraction
    of simulator wall-clock attributed to a named class or phase —
    near 1.0 when the attribution is healthy. When a
    :class:`~repro.telemetry.spans.SpanTracer` is supplied, the
    toolchain phases around the simulation (parse/lower/generate/
    elaborate) are appended so compile time is visible next to sim time.
    """
    wall = profiler.wall_ns / 1e9
    engine = profiler.sim.engine if profiler.sim is not None else "?"
    sections = [f"Host profile: {name} — {wall:.3f}s simulator wall-clock, "
                f"engine={engine}"]

    def _share(seconds):
        return f"{100.0 * seconds / wall:.1f}%" if wall else "0.0%"

    rows = [[row["class"], f"{row['seconds']:.4f}", _share(row["seconds"]),
             row["ticks"], row["ns_per_tick"]]
            for row in profiler.ranked_classes()]
    sections.append(render_table(
        ["component class", "seconds", "% wall", "ticks", "ns/tick"],
        rows, title="Host seconds by component class"))

    phase_rows = [[phase, f"{seconds:.4f}", _share(seconds)]
                  for phase, seconds in sorted(profiler.phases().items(),
                                               key=lambda kv: -kv[1])]
    sections.append(render_table(
        ["phase", "seconds", "% wall"],
        phase_rows, title="Host seconds by engine phase"))

    # machine-greppable: CI asserts on these two fractions
    sections.append(
        f"attribution: measured_fraction={profiler.measured_fraction():.4f} "
        f"coverage={profiler.coverage():.4f}")

    if tracer is not None and getattr(tracer, "spans", None):
        totals = tracer.phase_totals()
        span_rows = [[phase, f"{seconds:.4f}"]
                     for phase, seconds in sorted(totals.items(),
                                                  key=lambda kv: -kv[1])]
        if span_rows:
            sections.append(render_table(
                ["toolchain span", "seconds"], span_rows,
                title="Toolchain phases (host spans)"))

    return "\n\n".join(sections)
