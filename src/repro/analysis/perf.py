"""Static performance prediction: an analytical throughput/bottleneck
model over the parallel IR and the elaborated netlist.

The simulator answers "how many cycles does this design point take" in
seconds; the autotuner needs that answer in microseconds for thousands
of (Ntiles, Ntasks, memory) candidates. This module predicts the cycle
count *without running anything*: it combines

* a **work model** — per static task, how many dynamic instances run
  and what each instance costs, from :func:`build_task_dfgs` critical
  paths, :func:`find_loops` trip counts (constant trips via the PR 6
  range analysis idiom, affine trips evaluated against the entry
  arguments, a caller-supplied ``size`` fallback for bounds that arrive
  through memory) and a branch-aware block-weight propagation over the
  dominator tree;
* **resource bounds** — steady-state initiation-interval style lower
  bounds per component: data-box allocator concurrency (entries over
  the request round trip), per-tile memory issue, tile occupancy with
  an instance-overlap estimate, the single-ported L1, MSHR-limited miss
  service, and the one-grant-per-cycle spawn arbiter, with fan-in
  latencies and channel depths taken from the elaborated channel graph
  (:func:`~repro.analysis.netlist.build_channel_graph`);
* a **serial span** — Amdahl-style critical path through the spawn/sync
  tree (recursion unrolled over the argument recurrence, serial calls
  chained), which is what binds spawner-limited and call-dominated
  designs.

The predicted cycle count is the max of the bounds (plus a fraction of
the runner-up, since near-equal bounds interfere) and each bound is
reported as a ranked bottleneck in the same component/reason vocabulary
as the observability ledgers (``u0.databox``/``allocator-full``,
``T1:task``/``memory``, ``tasknet.spawn_arb``/``spawn-network``, ...),
so a prediction can be cross-checked against
:meth:`repro.obs.Observer.stall_sources`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Cast,
    CondBr,
    ICmp,
    Instruction,
    Load,
    Select,
    Store,
)
from repro.ir.values import Argument, Constant, Value
from repro.passes.cfg import predecessor_map
from repro.passes.dominators import compute_dominators
from repro.passes.loops import Loop, find_loops
from repro.task.txu import DEFAULT_LATENCIES


# ---------------------------------------------------------------------------
# Model parameters
# ---------------------------------------------------------------------------

@dataclass
class PerfParams:
    """Calibration constants of the analytical model.

    The defaults are fitted against the event-engine simulator over the
    workload matrix (see ``benchmarks/bench_predict_accuracy.py`` for
    the acceptance gates). They are *microarchitectural*, not
    per-workload: round trips follow from channel hops + arbiter levels
    + cache hit latency, the DRAM trip from the board's AXI latency.
    """

    #: load/store round trip through data box -> arbiter -> L1 on a hit
    hit_round_trip: float = 12.0
    #: extra cycles a miss adds to the average round trip
    miss_extra: float = 25.0
    #: full DRAM round trip for the MSHR-throughput bound
    dram_round_trip: float = 58.0
    #: secondary misses merge into MSHRs but still count; streaming
    #: accesses therefore observe more misses than unique lines
    secondary_miss_factor: float = 1.5
    #: miss rate of frame / pointer-stationary traffic (frames recycle
    #: through a small reserved region, so most of it hits)
    frame_miss_rate: float = 0.05
    #: pipeline drain between basic blocks of one instance
    block_overhead: float = 0.5
    #: host spawn -> first dispatch plus final join/drain
    startup: float = 30.0
    #: near-equal bounds interfere; credit this share of the runner-up
    runnerup_weight: float = 0.15
    #: fallback trip count when a loop bound is dynamic (e.g. loaded
    #: from memory) and no ``size`` hint is given
    default_size: int = 64


# ---------------------------------------------------------------------------
# Result types
# ---------------------------------------------------------------------------

@dataclass
class PredictedBottleneck:
    """One resource bound, in the stall-ledger vocabulary."""

    component: str
    reason: str
    bound_cycles: float
    share: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {"component": self.component, "reason": self.reason,
                "bound_cycles": round(self.bound_cycles, 1),
                "share": round(self.share, 4)}


@dataclass
class TaskEstimate:
    """Aggregated work-model output for one task unit."""

    sid: int
    name: str
    instances: float
    mem_ops: float
    est_misses: float
    serial_cycles: float
    hot_node_execs: float
    loop_iters_per_instance: float

    def as_dict(self) -> Dict[str, Any]:
        return {"sid": self.sid, "name": self.name,
                "instances": round(self.instances, 1),
                "mem_ops": round(self.mem_ops, 1),
                "est_misses": round(self.est_misses, 1),
                "serial_cycles": round(self.serial_cycles, 1),
                "hot_node_execs": round(self.hot_node_execs, 1),
                "loop_iters_per_instance":
                    round(self.loop_iters_per_instance, 2)}


@dataclass
class Prediction:
    """A predicted cycle count plus its ranked bottleneck attribution."""

    cycles: int
    entry: str
    bounds: Dict[str, float]
    bottlenecks: List[PredictedBottleneck]
    tasks: Dict[str, TaskEstimate]
    span_cycles: float
    notes: List[str] = field(default_factory=list)

    @property
    def top_bottleneck(self) -> Optional[PredictedBottleneck]:
        return self.bottlenecks[0] if self.bottlenecks else None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": 1,
            "entry": self.entry,
            "predicted_cycles": self.cycles,
            "span_cycles": round(self.span_cycles, 1),
            "bounds": {k: round(v, 1) for k, v in self.bounds.items()},
            "bottlenecks": [b.as_dict() for b in self.bottlenecks],
            "tasks": {name: t.as_dict() for name, t in self.tasks.items()},
            "notes": list(self.notes),
        }

    def render_text(self) -> str:
        lines = [f"predicted cycles for {self.entry}: {self.cycles}"]
        lines.append(f"  serial span: {self.span_cycles:.0f} cycles")
        lines.append("  ranked bottlenecks:")
        for b in self.bottlenecks[:6]:
            lines.append(f"    {b.component:<28} {b.reason:<20} "
                         f"bound={b.bound_cycles:>10.0f}  "
                         f"share={b.share:>5.1%}")
        lines.append("  per-task work model:")
        for est in self.tasks.values():
            lines.append(
                f"    T{est.sid}:{est.name:<24} inst={est.instances:>8.0f} "
                f"mem={est.mem_ops:>8.0f} serial={est.serial_cycles:>9.0f}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Static per-task facts (env-independent, computed once per design)
# ---------------------------------------------------------------------------

class _BlockFacts:
    """Env-independent per-block numbers."""

    __slots__ = ("serial_cp", "mem_ops", "line_fraction", "node_count")

    def __init__(self, serial_cp: float, mem_ops: int, line_fraction: float,
                 node_count: int):
        self.serial_cp = serial_cp
        self.mem_ops = mem_ops
        self.line_fraction = line_fraction
        self.node_count = node_count


class _LoopFacts:
    """What the trip evaluator needs to know about one natural loop."""

    __slots__ = ("loop", "cell", "limit", "inclusive", "step", "inits")

    def __init__(self, loop: Loop, cell: Optional[Alloca], limit: Optional[Value],
                 inclusive: bool, step: Optional[int], inits: List[Value]):
        self.loop = loop
        self.cell = cell
        self.limit = limit
        self.inclusive = inclusive
        self.step = step
        #: candidate initial values (stores to the cell outside the loop);
        #: several loops can share one induction cell, so the evaluator
        #: picks the evaluable candidate with the largest trip count
        self.inits = inits


def _stride_line_fraction(inst: Instruction, line_bytes: int,
                          frame_miss_rate: float) -> float:
    """Expected new-cache-lines per execution of one memory access."""
    pointer = inst.pointer
    from repro.ir.instructions import GEP

    if isinstance(pointer, GEP) and pointer.strides:
        stride = min(abs(s) for s in pointer.strides if s) if any(
            pointer.strides) else 0
        if stride <= 0:
            return frame_miss_rate
        return min(1.0, stride / float(line_bytes))
    # frame slots / pointer-stationary accesses: mostly hits
    return frame_miss_rate


# ---------------------------------------------------------------------------
# The model
# ---------------------------------------------------------------------------

class PerfModel:
    """Analytical throughput model for one generated design.

    Build once per design (compiles nothing, runs nothing; elaborates
    the netlist once to read fan-ins and channel depths), then call
    :meth:`predict` per configuration point — prediction is pure
    arithmetic, which is what makes ``repro sweep --evaluator static``
    and the future autotuner viable.
    """

    def __init__(self, module=None, *, design=None,
                 params: Optional[PerfParams] = None,
                 config=None):
        from repro.accel.config import AcceleratorConfig
        from repro.accel.generator import generate

        if design is None:
            if module is None:
                raise ValueError("PerfModel needs a module or a design")
            design = generate(module)
        self.design = design
        self.graph = design.graph
        self.module = design.module
        self.params = params or PerfParams()
        self._ref_config = config or AcceleratorConfig()
        self.num_units = len(design.compiled)

        # -- netlist facts from one reference elaboration ----------------
        self._read_netlist()

        # -- range analysis: constant/bounded trip counts ----------------
        from repro.analysis.ranges import infer_module_ranges

        try:
            self.ranges = infer_module_ranges(self.module)
        except Exception:
            self.ranges = None

        # -- per-function CFG facts --------------------------------------
        self._loops: Dict[Any, List[_LoopFacts]] = {}
        self._loops_by_header: Dict[BasicBlock, _LoopFacts] = {}
        self._idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._preds: Dict[BasicBlock, List[BasicBlock]] = {}
        self._single_store: Dict[Alloca, Store] = {}
        for function in self.module.functions:
            dom = compute_dominators(function)
            self._idom.update(dom.idom)
            preds = predecessor_map(function)
            for block, ps in preds.items():
                self._preds[block] = list(ps)
            loops = [self._loop_facts(function, loop)
                     for loop in find_loops(function)]
            self._loops[function] = loops
            for facts in loops:
                self._loops_by_header[facts.loop.header] = facts
            self._index_single_stores(function)

        # -- per-block facts over the compiled DFGs ----------------------
        latencies = dict(DEFAULT_LATENCIES)
        latencies.update(self._ref_config.latencies or {})
        self._blocks: Dict[BasicBlock, _BlockFacts] = {}
        self._task_of_block: Dict[BasicBlock, Any] = {}
        line_bytes = getattr(self._ref_config.cache, "line_bytes", 32)
        for ct in design.compiled:
            for block, dfg in ct.dfgs.items():
                self._task_of_block[block] = ct.task
                self._blocks[block] = self._block_facts(
                    dfg, latencies, line_bytes)

    # -- construction helpers ---------------------------------------------

    def _read_netlist(self) -> None:
        """Elaborate the design once and read structural facts (channel
        depths, arbiter fan-in) off the channel graph."""
        from repro.accel.accelerator import Accelerator
        from repro.analysis.netlist import build_channel_graph
        from repro.memory.arbiter import tree_levels

        self.spawn_levels = tree_levels(self.num_units + 1)
        self.mem_levels = tree_levels(self.num_units)
        self.channel_capacity: Dict[str, int] = {}
        try:
            ref = Accelerator(self.design, self._ref_config)
            graph = build_channel_graph(ref.sim)
            for channel in graph.channels:
                self.channel_capacity[channel.name] = getattr(
                    channel, "capacity", 2)
        except Exception:
            # elaboration can be refused (e.g. lint gates); the model
            # falls back to the architectural defaults
            pass

    def _block_facts(self, dfg, latencies: Dict[str, int],
                     line_bytes: int) -> _BlockFacts:
        params = self.params

        def serial_latency(node) -> int:
            if node.kind in ("load", "store"):
                return int(params.hit_round_trip)
            return latencies.get(node.kind, 1)

        cp = dfg.critical_path(serial_latency) + params.block_overhead
        mem = 0
        lines = 0.0
        for node in dfg.nodes:
            if node.kind in ("load", "store"):
                mem += 1
                lines += _stride_line_fraction(
                    node.inst, line_bytes, params.frame_miss_rate)
        return _BlockFacts(cp, mem, lines, len(dfg.nodes))

    def _index_single_stores(self, function) -> None:
        """Register cells written exactly once behave like local
        constants for the trip/branch evaluator."""
        counts: Dict[Alloca, List[Store]] = {}
        for block in function.blocks:
            for inst in block.instructions:
                if isinstance(inst, Store) and isinstance(
                        inst.pointer, Alloca) and not inst.pointer.in_frame:
                    counts.setdefault(inst.pointer, []).append(inst)
        for cell, stores in counts.items():
            if len(stores) == 1:
                self._single_store[cell] = stores[0]

    def _loop_facts(self, function, loop: Loop) -> _LoopFacts:
        """Extract the ``while (cell <cmp> limit) ... cell += step``
        shape; anything else keeps ``None`` fields and falls back."""
        term = loop.header.terminator
        cell = limit = None
        inclusive = False
        cond = term.cond if isinstance(term, CondBr) else None
        if isinstance(cond, BinaryOp) and cond.op == "and":
            # `while (a <cmp> b && ...)`: the first conjunct that matches
            # the induction shape bounds the trip count from above
            for part in (cond.lhs, cond.rhs):
                if isinstance(part, ICmp):
                    cond = part
                    break
        if isinstance(term, CondBr) and isinstance(cond, ICmp):
            cmp_ = cond
            if (cmp_.predicate in ("slt", "sle")
                    and isinstance(cmp_.lhs, Load)
                    and isinstance(cmp_.lhs.pointer, Alloca)
                    and not cmp_.lhs.pointer.in_frame
                    and term.if_true in loop.blocks):
                cell = cmp_.lhs.pointer
                limit = cmp_.rhs
                inclusive = cmp_.predicate == "sle"
        step = None
        inits: List[Value] = []
        if cell is not None:
            for block in loop.blocks:
                for inst in block.instructions:
                    if isinstance(inst, Store) and inst.pointer is cell:
                        s = _added_constant(inst.value, cell)
                        if s is None or s <= 0 or (step is not None
                                                   and s != step):
                            step = None
                            break
                        step = s
                else:
                    continue
                break
            for block in function.blocks:
                if block in loop.blocks:
                    continue
                for inst in block.instructions:
                    if isinstance(inst, Store) and inst.pointer is cell:
                        inits.append(inst.value)
        return _LoopFacts(loop, cell, limit, inclusive, step, inits)

    # -- prediction --------------------------------------------------------

    def entry_task(self, entry: Optional[str] = None):
        if entry is None:
            return self.graph.tasks[0]
        function = self.module.function(entry)
        if function is None or function not in self.graph.root_for_function:
            from repro.errors import TapasError

            raise TapasError(f"no entry task for function {entry!r}")
        return self.graph.root_for_function[function]

    def predict(self, entry: Optional[str] = None, config=None,
                args: Optional[List[Any]] = None,
                size: Optional[int] = None) -> Prediction:
        """Predict the cycle count of one offload.

        ``args`` are the entry function's argument values (scalars drive
        trip counts and recursion depths; pointer values are ignored);
        ``size`` is the fallback trip count for loop bounds the static
        model cannot see (e.g. lengths loaded from memory).
        """
        config = config or self._ref_config
        params = self.params
        root = self.entry_task(entry)
        env: Dict[Value, Optional[float]] = {}
        if args is not None:
            for value, arg in zip(root.args, args):
                env[value] = arg if isinstance(arg, (int, float)) else None
        evaluation = _Evaluation(self, env_size=size or params.default_size)
        totals = evaluation.totals(root, env)
        span = evaluation.span(root, env) + params.startup

        bounds: Dict[str, float] = {}
        ranked: List[PredictedBottleneck] = []

        def bound(name: str, component: str, reason: str, value: float):
            bounds[name] = value
            ranked.append(PredictedBottleneck(component, reason, value))

        # -- per-unit bounds ---------------------------------------------
        total_mem = 0.0
        total_misses = 0.0
        total_msgs = 0.0
        estimates: Dict[str, TaskEstimate] = {}
        for ct in self.design.compiled:
            acc = totals.get(ct.sid)
            if acc is None or acc.instances <= 0:
                continue
            unit = f"T{ct.sid}:{ct.name}"
            tp = config.params_for(ct.name)
            misses = acc.lines * params.secondary_miss_factor
            miss_frac = min(0.9, misses / acc.mem) if acc.mem else 0.0
            round_trip = (params.hit_round_trip
                          + miss_frac * params.miss_extra
                          + (self.mem_levels - 1))
            total_mem += acc.mem
            total_misses += misses
            total_msgs += acc.instances
            per_inst = acc.serial / acc.instances if acc.instances else 0.0
            loop_iters = (acc.loop_iters / acc.instances
                          if acc.instances else 0.0)
            # a tile keeps up to max_inflight instances resident and the
            # TXU interleaves them node-by-node, so the steady-state
            # initiation interval is latency / inflight
            overlap = tp.max_inflight_per_tile
            estimates[ct.name] = TaskEstimate(
                sid=ct.sid, name=ct.name, instances=acc.instances,
                mem_ops=acc.mem, est_misses=misses,
                serial_cycles=acc.serial, hot_node_execs=acc.hot,
                loop_iters_per_instance=loop_iters)
            if acc.mem:
                bound(f"databox[{ct.sid}]", f"u{ct.sid}.databox",
                      "allocator-full",
                      acc.mem * round_trip / max(1, tp.databox_entries))
                bound(f"memport[{ct.sid}]", unit, "memory",
                      acc.mem / max(1, tp.ntiles))
            bound(f"tiles[{ct.sid}]", unit, "execute",
                  acc.serial / (max(1, tp.ntiles) * max(1.0, overlap)))
            bound(f"struct[{ct.sid}]", unit, "tiles-full",
                  acc.hot / max(1, tp.ntiles))
            bound(f"dispatch[{ct.sid}]", unit, "dispatch", acc.instances)
            _ = per_inst  # reported via TaskEstimate

        # -- shared resources --------------------------------------------
        if total_mem:
            bound("l1-port", "L1", "resp-backpressure", total_mem)
            cache = config.cache
            # secondary misses merge into an allocated MSHR, so the
            # DRAM-service bound scales with unique lines, not misses
            bound("mshr", "L1", "mshr-full",
                  (total_misses / params.secondary_miss_factor)
                  * params.dram_round_trip / max(1, cache.mshr_count))
            bound("dram", "DRAM", "dram-backpressure",
                  total_misses * 1.0)
        if total_msgs > 1:
            bound("spawn-network", "tasknet.spawn_arb", "spawn-network",
                  total_msgs + self.spawn_levels)

        # -- serial span ---------------------------------------------------
        span_component, span_reason = self._span_attribution(
            root, evaluation, totals)
        bound("span", span_component, span_reason, span)

        ranked.sort(key=lambda b: b.bound_cycles, reverse=True)
        top = ranked[0].bound_cycles if ranked else 0.0
        runner = ranked[1].bound_cycles if len(ranked) > 1 else 0.0
        predicted = top + params.runnerup_weight * runner + params.startup
        total_bound = sum(b.bound_cycles for b in ranked) or 1.0
        for b in ranked:
            b.share = b.bound_cycles / total_bound

        notes = list(evaluation.notes)
        return Prediction(
            cycles=int(round(predicted)),
            entry=root.name,
            bounds=bounds,
            bottlenecks=ranked,
            tasks=estimates,
            span_cycles=span,
            notes=notes)

    def _span_attribution(self, root, evaluation: "_Evaluation",
                          totals) -> Tuple[str, str]:
        """Name the span bound the way the ledgers would see it."""
        call_heavy = any(t.calls for t in self.graph.tasks
                         if totals.get(t.sid)
                         and totals[t.sid].instances > 0)
        if call_heavy:
            # callers park in call-join while the serial callee runs
            caller = next((t for t in self.graph.tasks if t.calls), root)
            return f"T{caller.sid}:{caller.name}", "call-join"
        acc = totals.get(root.sid)
        if acc is not None and acc.serial > 0 and acc.mem > 0 and \
                acc.serial_mem / acc.serial > 0.4:
            return f"T{root.sid}:{root.name}", "memory"
        return f"T{root.sid}:{root.name}", "sync-wait"


def _added_constant(value: Value, cell: Alloca) -> Optional[int]:
    """``value == load cell + C`` -> C, else None."""
    if not isinstance(value, BinaryOp) or value.op != "add":
        return None
    for a, b in ((value.lhs, value.rhs), (value.rhs, value.lhs)):
        if (isinstance(a, Load) and a.pointer is cell
                and isinstance(b, Constant)):
            return int(b.value)
    return None


# ---------------------------------------------------------------------------
# Per-prediction evaluation (env-dependent, memoised)
# ---------------------------------------------------------------------------

class _Totals:
    """Mutable per-task accumulator for the interprocedural roll-up."""

    __slots__ = ("instances", "mem", "lines", "serial", "serial_mem",
                 "hot", "loop_iters")

    def __init__(self):
        self.instances = 0.0
        self.mem = 0.0
        self.lines = 0.0
        self.serial = 0.0
        self.serial_mem = 0.0
        self.hot = 0.0
        self.loop_iters = 0.0

    def add(self, other: "_Totals", mult: float) -> None:
        self.instances += other.instances * mult
        self.mem += other.mem * mult
        self.lines += other.lines * mult
        self.serial += other.serial * mult
        self.serial_mem += other.serial_mem * mult
        self.hot += other.hot * mult
        self.loop_iters += other.loop_iters * mult


class _InstanceProfile:
    __slots__ = ("own", "spawns", "calls", "ret_writebacks")

    def __init__(self):
        self.own = _Totals()
        #: (child task, child env, multiplicity, has ret writeback)
        self.spawns: List[Tuple[Any, Dict, float, bool]] = []
        self.calls: List[Tuple[Any, Dict, float]] = []
        self.ret_writebacks = 0.0


_MAX_DEPTH = 64
_MAX_MEMO = 200_000
_MAX_TRIPS = 1 << 22


class _Evaluation:
    """One prediction's env-dependent walk, memoised per (task, env)."""

    def __init__(self, model: PerfModel, env_size: int):
        self.model = model
        self.size = max(1, int(env_size))
        self.notes: List[str] = []
        self._profiles: Dict[Tuple[int, tuple], _InstanceProfile] = {}
        self._totals: Dict[Tuple[int, tuple], Dict[int, _Totals]] = {}
        self._spans: Dict[Tuple[int, tuple], float] = {}
        self._used_fallback = False

    # -- value evaluation --------------------------------------------------

    def eval(self, value: Optional[Value], env: Dict[Value, Optional[float]],
             depth: int = 0) -> Optional[float]:
        """Evaluate ``value`` to a number under ``env``, or None."""
        if value is None or depth > 16:
            return None
        if value in env:
            return env[value]
        if isinstance(value, Constant):
            v = value.value
            return float(v) if isinstance(v, (int, float, bool)) else None
        if isinstance(value, Argument):
            return None
        if isinstance(value, BinaryOp):
            a = self.eval(value.lhs, env, depth + 1)
            b = self.eval(value.rhs, env, depth + 1)
            if a is None or b is None:
                return None
            return _apply_binop(value.op, a, b)
        if isinstance(value, ICmp):
            a = self.eval(value.lhs, env, depth + 1)
            b = self.eval(value.rhs, env, depth + 1)
            if a is None or b is None:
                return None
            return float(_apply_icmp(value.predicate, a, b))
        if isinstance(value, Select):
            c = self.eval(value.operands[0], env, depth + 1)
            if c is None:
                return None
            return self.eval(value.operands[1 if c else 2], env, depth + 1)
        if isinstance(value, Cast):
            return self.eval(value.operands[0], env, depth + 1)
        if isinstance(value, Load):
            cell = value.pointer
            if isinstance(cell, Alloca):
                store = self.model._single_store.get(cell)
                if store is not None:
                    return self.eval(store.value, env, depth + 1)
        return None

    def trips(self, facts: _LoopFacts, env: Dict[Value, Optional[float]]
              ) -> float:
        if facts.cell is None or facts.step is None:
            self._used_fallback = True
            return float(self.size)
        limit = self.eval(facts.limit, env)
        if limit is None:
            self._used_fallback = True
            return float(self.size)
        # several loops can share an induction cell (e.g. a merge loop
        # and its cleanup loop); among the evaluable candidate inits,
        # keep the one that bounds the trip count from above
        start = None
        for candidate in facts.inits:
            value = self.eval(candidate, env)
            if value is not None and (start is None or value < start):
                start = value
        if start is None:
            start = 0.0
        span = limit - start + (1 if facts.inclusive else 0)
        trips = max(0.0, -(-span // facts.step))
        return float(min(trips, _MAX_TRIPS))

    # -- per-instance profile ---------------------------------------------

    def _env_key(self, task, env: Dict[Value, Optional[float]]) -> tuple:
        return tuple(env.get(v) for v in task.args)

    def profile(self, task, env: Dict[Value, Optional[float]]
                ) -> _InstanceProfile:
        key = (task.sid, self._env_key(task, env))
        hit = self._profiles.get(key)
        if hit is not None:
            return hit
        prof = _InstanceProfile()
        if len(self._profiles) < _MAX_MEMO:
            self._profiles[key] = prof
        model = self.model
        weights: Dict[BasicBlock, float] = {}
        trip_of: Dict[BasicBlock, float] = {}

        for block in task.blocks:
            if block is task.entry:
                weights[block] = 1.0
                continue
            parent = model._idom.get(block)
            if parent is None or parent not in weights:
                weights[block] = 1.0 if parent is None else 0.0
                continue
            w = weights[parent]
            # leaving loops: undo their multiplicity
            for facts in model._loops.get(task.function, ()):  # small lists
                loop = facts.loop
                if parent in loop.blocks and block not in loop.blocks:
                    t = trip_of.get(loop.header)
                    if t:
                        w /= t
            # entering a loop at its header: multiply by the trip count
            header_facts = model._loops_by_header.get(block)
            if header_facts is not None:
                t = max(self.trips(header_facts, env), 0.0)
                trip_of[block] = t if t else 1.0
                w *= t
            # branch-aware weighting on single-pred successors: an
            # evaluable condition kills the untaken arm outright; an
            # unknown one splits a two-armed diamond 50/50 (a one-armed
            # guard keeps full weight — conservative)
            term = parent.terminator
            if isinstance(term, CondBr) and \
                    term.if_true is not term.if_false:
                preds = model._preds.get(block, [])
                if len(preds) == 1 and preds[0] is parent:
                    cond = self.eval(term.cond, env)
                    if cond is not None:
                        taken = term.if_true if cond else term.if_false
                        if block is not taken:
                            w = 0.0
                    elif parent not in model._loops_by_header:
                        # a loop header's arms are body+exit, not an
                        # if/else diamond — never split those
                        other = (term.if_false if block is term.if_true
                                 else term.if_true)
                        other_preds = model._preds.get(other, [])
                        if len(other_preds) == 1 and \
                                other_preds[0] is parent:
                            w *= 0.5
            weights[block] = w

        own = prof.own
        own.instances = 1.0
        visited = 0.0
        total_execs = 0.0
        for block, w in weights.items():
            if w <= 0.0:
                continue
            facts = model._blocks.get(block)
            if facts is None:
                continue
            visited += 1.0
            total_execs += w
            own.mem += w * facts.mem_ops
            own.lines += w * facts.line_fraction
            own.serial += w * facts.serial_cp
            own.serial_mem += w * facts.mem_ops * model.params.hit_round_trip
            own.hot = max(own.hot, w)
        own.loop_iters = max(0.0, total_execs - visited)

        # spawn/call sites weighted by their block
        compiled = model.design.compiled[task.sid]
        for detach, spec in compiled.spawn_specs.items():
            site = detach.parent
            w = weights.get(site, 0.0)
            if w <= 0.0:
                continue
            child = model.graph.task_by_sid(spec.dest_sid)
            child_env = self._child_env(child, spec.arg_values, env)
            prof.spawns.append(
                (child, child_env, w, spec.ret_ptr_value is not None))
        for call, spec in compiled.call_specs.items():
            site = call.parent
            w = weights.get(site, 0.0)
            if w <= 0.0:
                continue
            callee = model.graph.task_by_sid(spec.dest_sid)
            callee_env = self._child_env(callee, spec.arg_values, env)
            prof.calls.append((callee, callee_env, w))
        return prof

    def _child_env(self, child, arg_values, env) -> Dict[Value, Optional[float]]:
        child_env: Dict[Value, Optional[float]] = {}
        for formal, actual in zip(child.args, arg_values):
            child_env[formal] = self.eval(actual, env)
        return child_env

    # -- interprocedural roll-ups -----------------------------------------

    def totals(self, task, env: Dict[Value, Optional[float]],
               depth: int = 0) -> Dict[int, _Totals]:
        key = (task.sid, self._env_key(task, env))
        hit = self._totals.get(key)
        if hit is not None:
            return hit
        result: Dict[int, _Totals] = {}
        # pre-publish a placeholder to cut unforeseen cycles
        self._totals[key] = result
        if depth > _MAX_DEPTH:
            self.notes.append(
                f"recursion deeper than {_MAX_DEPTH} in {task.name}; "
                "work model truncated")
            return result
        prof = self.profile(task, env)
        own = result.setdefault(task.sid, _Totals())
        own.add(prof.own, 1.0)
        for child, child_env, mult, has_ret in prof.spawns:
            sub = self.totals(child, child_env, depth + 1)
            for sid, acc in sub.items():
                result.setdefault(sid, _Totals()).add(acc, mult)
            if has_ret:
                # the child's completion writes the return value back
                # through the caller's frame: one store per spawn
                result.setdefault(child.sid, _Totals()).mem += mult
                result[child.sid].lines += (
                    mult * self.model.params.frame_miss_rate)
        for callee, callee_env, mult in prof.calls:
            sub = self.totals(callee, callee_env, depth + 1)
            for sid, acc in sub.items():
                result.setdefault(sid, _Totals()).add(acc, mult)
        return result

    def span(self, task, env: Dict[Value, Optional[float]],
             depth: int = 0) -> float:
        """Critical path (cycles) of one instance including children."""
        key = (task.sid, self._env_key(task, env))
        hit = self._spans.get(key)
        if hit is not None:
            return hit
        self._spans[key] = 0.0  # cycle guard
        if depth > _MAX_DEPTH:
            return 0.0
        prof = self.profile(task, env)
        total = prof.own.serial
        join_trip = 2.0 * self.model.spawn_levels + 4.0
        for callee, callee_env, mult in prof.calls:
            total += mult * (self.span(callee, callee_env, depth + 1)
                             + join_trip)
        child_span = 0.0
        for child, child_env, mult, _has_ret in prof.spawns:
            if mult <= 0.0:
                continue
            child_span = max(child_span,
                             self.span(child, child_env, depth + 1)
                             + join_trip)
        total += child_span
        self._spans[key] = total
        return total


def _apply_binop(op: str, a: float, b: float) -> Optional[float]:
    try:
        if op == "add":
            return a + b
        if op == "sub":
            return a - b
        if op == "mul":
            return a * b
        if op == "sdiv":
            return float(int(a / b)) if b else None
        if op == "srem":
            return float(int(a - int(a / b) * b)) if b else None
        if op in ("smin", "fmin"):
            return min(a, b)
        if op in ("smax", "fmax"):
            return max(a, b)
        if op == "and":
            return float(int(a) & int(b))
        if op == "or":
            return float(int(a) | int(b))
        if op == "xor":
            return float(int(a) ^ int(b))
        if op == "shl":
            return float(int(a) << min(63, int(b)))
        if op == "ashr":
            return float(int(a) >> min(63, int(b)))
        if op in ("fadd",):
            return a + b
        if op in ("fsub",):
            return a - b
        if op in ("fmul",):
            return a * b
        if op == "fdiv":
            return a / b if b else None
    except Exception:
        return None
    return None


def _apply_icmp(pred: str, a: float, b: float) -> bool:
    return {
        "eq": a == b, "ne": a != b,
        "slt": a < b, "sle": a <= b,
        "sgt": a > b, "sge": a >= b,
    }.get(pred, False)
