"""The sweep runner: parallel point evaluation with failure isolation.

Evaluators are registered by name at import time (workers created with
the default ``fork`` start method inherit the registry; on spawn-based
platforms custom evaluators must live in an importable module). The
built-in ``workload`` evaluator runs a registered workload under a
config rebuilt from the point spec.

Execution contract:

* one crashing point produces a structured error record (exception
  type, message, traceback) — the rest of the sweep completes;
* records come back in point order regardless of completion order;
* with a :class:`~repro.exp.cache.ResultCache` attached, previously
  computed points are served from disk (errors are never cached), so a
  re-run is near-instant and an interrupted sweep resumes where it
  died;
* every result value is normalised through a JSON round-trip before it
  is recorded, so a fresh record and its cached replay are
  field-identical.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import TapasError
from repro.exp.cache import ResultCache
from repro.exp.grid import config_from_spec

Evaluator = Callable[[Dict[str, Any]], Any]


@dataclass(frozen=True)
class _Registration:
    name: str
    fn: Evaluator
    #: spec -> the program text the point compiles; folded into the
    #: cache key so editing a workload's source invalidates its entries
    program_text: Optional[Callable[[Dict[str, Any]], str]] = None


_EVALUATORS: Dict[str, _Registration] = {}


def register_evaluator(name: str, fn: Evaluator,
                       program_text: Optional[Callable] = None,
                       replace: bool = False) -> None:
    if name in _EVALUATORS and not replace:
        raise TapasError(f"evaluator {name!r} already registered")
    _EVALUATORS[name] = _Registration(name, fn, program_text)


def get_evaluator(name: str) -> _Registration:
    if name not in _EVALUATORS:
        raise TapasError(
            f"unknown evaluator {name!r}; have {sorted(_EVALUATORS)}")
    return _EVALUATORS[name]


# -- the built-in workload evaluator --------------------------------------

def _workload_program_text(spec: Dict[str, Any]) -> str:
    from repro.workloads import REGISTRY

    return REGISTRY.get(spec["workload"]).source


def _eval_workload(spec: Dict[str, Any]) -> Dict[str, Any]:
    from repro.workloads import REGISTRY

    workload = REGISTRY.get(spec["workload"])
    config = config_from_spec(workload, spec)
    result = workload.run(config, scale=spec.get("scale", 1),
                          max_cycles=spec.get("max_cycles", 50_000_000))
    if not result.correct:
        raise TapasError(
            f"{workload.name} produced a wrong result under {spec}")
    return {
        "workload": result.name,
        "engine": config.engine,
        "tiles": spec.get("tiles"),
        "scale": spec.get("scale", 1),
        "cycles": result.cycles,
        "correct": result.correct,
        "work_items": result.work_items,
        "retval": result.retval,
        "stats": result.stats,
    }


register_evaluator("workload", _eval_workload,
                   program_text=_workload_program_text)


# -- the static-prediction evaluator ---------------------------------------

#: per-process PerfModel memo — the static analysis is per *program*, so
#: every (tiles, scale) point of one workload shares a model instance
_STATIC_MODELS: Dict[str, Any] = {}


def _eval_static(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Evaluate one point with the analytical performance model.

    Engine-free: no simulation runs. The record mirrors the ``workload``
    evaluator's shape (``cycles`` is the predicted count) so downstream
    tables and BENCH_*.json writers work unchanged, and adds the full
    ranked-bottleneck prediction under ``"prediction"``.
    """
    from repro.analysis.perf import PerfModel
    from repro.memory.backing import MainMemory
    from repro.workloads import REGISTRY

    workload = REGISTRY.get(spec["workload"])
    config = config_from_spec(workload, spec)
    model = _STATIC_MODELS.get(workload.name)
    if model is None:
        model = _STATIC_MODELS[workload.name] = PerfModel(
            workload.fresh_module(), config=config)
    prepared = workload.prepare(MainMemory(), spec.get("scale", 1))
    prediction = model.predict(entry=workload.entry, config=config,
                               args=prepared.args,
                               size=prepared.work_items or None)
    top = prediction.top_bottleneck
    return {
        "workload": workload.name,
        "engine": "static",
        "tiles": spec.get("tiles"),
        "scale": spec.get("scale", 1),
        "cycles": prediction.cycles,
        "correct": None,
        "work_items": prepared.work_items,
        "retval": None,
        "stats": None,
        "top_bottleneck": (f"{top.component}:{top.reason}" if top else None),
        "prediction": prediction.as_dict(),
    }


register_evaluator("static", _eval_static,
                   program_text=_workload_program_text)


# -- point execution (runs in the worker process) -------------------------

def _execute_point(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Evaluate one point; never raises. The outcome dict is the
    record's core — structured errors instead of a dead sweep."""
    # monotonic start: comparable with the parent's submit timestamp on
    # the same machine, so the runner can derive pool queue-wait time
    started_mono = time.monotonic()
    start = time.perf_counter()
    try:
        registration = get_evaluator(spec["evaluator"])
        value = registration.fn(spec)
        # JSON round-trip: tuples become lists, int keys become strings
        # — exactly what a cached replay of this record will contain
        value = json.loads(json.dumps(value))
        outcome: Dict[str, Any] = {"status": "ok", "value": value,
                                   "error": None}
    except Exception as exc:
        outcome = {"status": "error", "value": None,
                   "error": {"type": type(exc).__name__,
                             "message": str(exc),
                             "traceback": traceback.format_exc()}}
    outcome["seconds"] = round(time.perf_counter() - start, 6)
    outcome["worker"] = os.getpid()
    outcome["started_mono"] = started_mono
    return outcome


@dataclass
class SweepResult:
    """Records in point order plus the sweep-level summary."""

    records: List[Dict[str, Any]]
    summary: Dict[str, Any]

    @property
    def values(self) -> List[Any]:
        """Ok-record values in point order (None where a point failed)."""
        return [r["value"] for r in self.records]

    @property
    def errors(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r["status"] == "error"]


@dataclass
class SweepRunner:
    """Expands nothing and decides nothing: takes point specs, returns
    records. ``jobs`` > 1 fans out over a process pool; a cache serves
    hits before any worker starts; ``progress`` (done, total, elapsed
    seconds) fires after every completed point."""

    jobs: int = 1
    cache: Optional[ResultCache] = None
    progress: Optional[Callable[[int, int, float], None]] = None

    def run(self, specs: Sequence[Dict[str, Any]]) -> SweepResult:
        start = time.perf_counter()
        total = len(specs)
        records: List[Optional[Dict[str, Any]]] = [None] * total
        pending: List[tuple] = []  # (index, spec, cache key)
        hits = 0
        for index, spec in enumerate(specs):
            try:
                registration = get_evaluator(spec["evaluator"])
            except Exception as exc:
                # a misnamed evaluator poisons one point, not the sweep
                records[index] = {
                    "spec": spec, "cache_hit": False, "worker": None,
                    "seconds": 0.0, "status": "error", "value": None,
                    "error": {"type": type(exc).__name__,
                              "message": str(exc),
                              "traceback": traceback.format_exc()}}
                continue
            key = None
            if self.cache is not None:
                text = (registration.program_text(spec)
                        if registration.program_text else "")
                key = self.cache.key(registration.name, spec, text)
                cached = self.cache.get(key)
                if cached is not None:
                    hits += 1
                    records[index] = {"spec": spec, "cache_hit": True,
                                      "worker": None, "seconds": 0.0,
                                      "status": "ok",
                                      "value": cached["value"],
                                      "error": None}
                    continue
            pending.append((index, spec, key))

        done = total - len(pending)
        if self.progress is not None and total:
            self.progress(done, total, time.perf_counter() - start)

        submit_mono: Dict[int, float] = {}  # point index -> submit time

        def record_outcome(index, spec, key, outcome):
            if outcome["status"] == "ok" and self.cache is not None \
                    and key is not None:
                self.cache.put(key, {"value": outcome["value"]})
            outcome = dict(outcome)
            # queue wait: submit -> worker pickup, both time.monotonic()
            # (comparable across forked processes on the same machine)
            started = outcome.pop("started_mono", None)
            submitted = submit_mono.get(index)
            wait_s = 0.0
            if started is not None and submitted is not None:
                wait_s = max(0.0, started - submitted)
            outcome["queue_wait"] = round(wait_s, 6)
            outcome["spec"] = spec
            outcome["cache_hit"] = False
            records[index] = outcome

        if pending and (self.jobs <= 1 or len(pending) == 1):
            for index, spec, key in pending:
                submit_mono[index] = time.monotonic()
                record_outcome(index, spec, key, _execute_point(spec))
                done += 1
                if self.progress is not None:
                    self.progress(done, total, time.perf_counter() - start)
        elif pending:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                futures = {}
                for index, spec, key in pending:
                    submit_mono[index] = time.monotonic()
                    futures[pool.submit(_execute_point, spec)] = (index, spec,
                                                                  key)
                remaining = set(futures)
                while remaining:
                    finished, remaining = wait(remaining,
                                               return_when=FIRST_COMPLETED)
                    for future in finished:
                        index, spec, key = futures[future]
                        record_outcome(index, spec, key, future.result())
                        done += 1
                        if self.progress is not None:
                            self.progress(done, total,
                                          time.perf_counter() - start)

        wall = time.perf_counter() - start
        errors = sum(1 for r in records if r is not None
                     and r["status"] == "error")
        telemetry = self._telemetry(records, wall)
        if self.cache is not None:
            telemetry["cache"] = self.cache.counters()
        summary = {
            "points": total,
            "jobs": self.jobs,
            "wall_seconds": round(wall, 6),
            "cache_hits": hits,
            "cache_misses": total - hits,
            "errors": errors,
            "telemetry": telemetry,
        }
        return SweepResult(records=records, summary=summary)  # type: ignore[arg-type]

    @staticmethod
    def _telemetry(records: Sequence[Optional[Dict[str, Any]]],
                   wall: float) -> Dict[str, Any]:
        """Aggregate per-worker utilization, queue-wait and point-latency
        histograms, folded into the sweep summary (and from there into
        the BENCH JSON's top-level ``telemetry`` block)."""
        from repro.telemetry.metrics import (LATENCY_BUCKETS_S,
                                             MetricsRegistry)

        local = MetricsRegistry(enabled=True)
        point_hist = local.histogram("sweep.point_seconds",
                                     buckets=LATENCY_BUCKETS_S)
        wait_hist = local.histogram("sweep.queue_wait_seconds",
                                    buckets=LATENCY_BUCKETS_S)
        workers: Dict[int, Dict[str, float]] = {}
        for record in records:
            if record is None or record.get("cache_hit"):
                continue
            if record.get("worker") is None:
                continue
            point_hist.observe(record["seconds"])
            wait_hist.observe(record.get("queue_wait", 0.0))
            bucket = workers.setdefault(record["worker"],
                                        {"points": 0, "busy_seconds": 0.0})
            bucket["points"] += 1
            bucket["busy_seconds"] += record["seconds"]
        return {
            "workers": {
                str(pid): {
                    "points": int(stats["points"]),
                    "busy_seconds": round(stats["busy_seconds"], 6),
                    "utilization": (round(stats["busy_seconds"] / wall, 4)
                                    if wall > 0 else None),
                }
                for pid, stats in sorted(workers.items())
            },
            "point_seconds": point_hist.as_dict(),
            "queue_wait_seconds": wait_hist.as_dict(),
        }


def progress_printer(stream=None) -> Callable[[int, int, float], None]:
    """A simple ``done/total (elapsed, eta)`` progress line for TTYs."""
    import sys

    stream = stream or sys.stderr

    def report(done: int, total: int, elapsed: float) -> None:
        eta = (elapsed / done * (total - done)) if done else float("nan")
        end = "\n" if done == total else "\r"
        stream.write(f"sweep: {done}/{total} points "
                     f"({elapsed:.1f}s elapsed, eta {eta:.1f}s){end}")
        stream.flush()

    return report
