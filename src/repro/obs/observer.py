"""The observer: samples the whole simulator once per cycle.

Attach with :meth:`repro.sim.engine.Simulator.attach_observer` (or pass
``observer=`` to :func:`repro.accel.build_accelerator`). When no observer
is attached the engine's hot loop contains a single ``is None`` test, and
component classification code never runs — observability off is free, and
cycle counts are bit-identical either way.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.obs.accounting import ChannelProbe, CycleLedger
from repro.sim.component import OBS_IDLE, OBS_STALL_IN, OBS_STALL_OUT


class Observer:
    """Per-cycle sampler building ledgers and channel probes.

    Ledgers and probes are created lazily at sample time, so components
    and channels registered after attachment (or mid-run) are picked up
    automatically.
    """

    def __init__(self, keep_timeline: bool = True):
        self.keep_timeline = keep_timeline
        self.ledgers: Dict[str, CycleLedger] = {}
        self.probes: Dict[str, ChannelProbe] = {}
        self.cycles_observed = 0
        self.first_cycle: Optional[int] = None
        self.last_cycle: Optional[int] = None

    # -- engine interface --------------------------------------------------

    def on_cycle(self, sim, cycle: int):
        """Called by the engine at the end of every tick."""
        self.cycles_observed += 1
        if self.first_cycle is None:
            self.first_cycle = cycle
        self.last_cycle = cycle
        ledgers = self.ledgers
        for component in sim.components:
            state, reason = component.obs_classify(cycle)
            ledger = ledgers.get(component.name)
            if ledger is None:
                ledger = ledgers[component.name] = CycleLedger(
                    component.name, keep_timeline=self.keep_timeline)
            ledger.record(cycle, state, reason)
            for child_name, child_state, child_reason in \
                    component.obs_children(cycle):
                child = ledgers.get(child_name)
                if child is None:
                    child = ledgers[child_name] = CycleLedger(
                        child_name, group=component.name,
                        keep_timeline=self.keep_timeline)
                child.record(cycle, child_state, child_reason)
        probes = self.probes
        for channel in sim.channels:
            probe = probes.get(channel.name)
            if probe is None:
                probe = probes[channel.name] = ChannelProbe(channel)
            probe.record(cycle)

    def on_quiet_span(self, sim, start: int, span: int):
        """Called by the event engine instead of ``span`` ``on_cycle`` calls.

        Over a fast-forwarded range nothing ticks and nothing commits, and
        the engine only skips to the earliest armed timer — so every
        ``done > cycle`` style comparison inside ``obs_classify`` is
        constant across the range. Classify once, record a run. Engines
        without this optimisation (or observers without this method) fall
        back to per-cycle ``on_cycle``; both produce identical ledgers.
        """
        if span <= 0:
            return
        self.cycles_observed += span
        if self.first_cycle is None:
            self.first_cycle = start
        self.last_cycle = start + span - 1
        ledgers = self.ledgers
        for component in sim.components:
            state, reason = component.obs_classify(start)
            ledger = ledgers.get(component.name)
            if ledger is None:
                ledger = ledgers[component.name] = CycleLedger(
                    component.name, keep_timeline=self.keep_timeline)
            ledger.record_span(start, span, state, reason)
            for child_name, child_state, child_reason in \
                    component.obs_children(start):
                child = ledgers.get(child_name)
                if child is None:
                    child = ledgers[child_name] = CycleLedger(
                        child_name, group=component.name,
                        keep_timeline=self.keep_timeline)
                child.record_span(start, span, child_state, child_reason)
        probes = self.probes
        for channel in sim.channels:
            probe = probes.get(channel.name)
            if probe is None:
                probe = probes[channel.name] = ChannelProbe(channel)
            probe.record_span(start, span)

    # -- derived views -----------------------------------------------------

    def component_ledgers(self) -> List[CycleLedger]:
        """Top-level ledgers only (a unit, not its tiles)."""
        return [ledger for ledger in self.ledgers.values()
                if ledger.group == ledger.name]

    def tile_ledgers(self, group: str) -> List[CycleLedger]:
        return [ledger for ledger in self.ledgers.values()
                if ledger.group == group and ledger.name != group]

    def stall_sources(self) -> List[Tuple[str, str, int]]:
        """(component, reason, cycles) sorted by descending cycle cost."""
        out = []
        for ledger in self.ledgers.values():
            for reason, cycles in ledger.stall_reasons().items():
                out.append((ledger.name, reason, cycles))
        out.sort(key=lambda row: (-row[2], row[0], row[1]))
        return out

    def stall_breakdown(self) -> Dict[str, int]:
        """Aggregate stall-reason -> cycles across all components."""
        total: Counter = Counter()
        for ledger in self.ledgers.values():
            for reason, cycles in ledger.stall_reasons().items():
                total[reason] += cycles
        return dict(total)

    def busiest_channels(self, limit: int = 10) -> List[ChannelProbe]:
        probes = [p for p in self.probes.values()
                  if p.channel.total_pushed or p.backpressure_cycles]
        probes.sort(key=lambda p: (-p.backpressure_cycles,
                                   -p.channel.total_pushed, p.name))
        return probes[:limit]

    def as_dict(self) -> dict:
        return {
            "cycles_observed": self.cycles_observed,
            "components": {name: ledger.as_dict()
                           for name, ledger in sorted(self.ledgers.items())},
            "channels": {name: probe.as_dict()
                         for name, probe in sorted(self.probes.items())
                         if probe.channel.total_pushed},
            "stall_breakdown": self.stall_breakdown(),
        }


def stall_snapshot(sim) -> dict:
    """One-shot classification of the current simulator state.

    Used for deadlock post-mortems: works without an attached observer
    because :meth:`obs_classify` is pure poll-time logic. Returns the
    per-component state/reason attribution plus every channel holding
    stuck data.
    """
    components = []
    for component in sim.components:
        state, reason = component.obs_classify(sim.cycle)
        components.append({"name": component.name, "state": state,
                           "reason": reason})
        for child_name, child_state, child_reason in \
                component.obs_children(sim.cycle):
            components.append({"name": child_name, "state": child_state,
                               "reason": child_reason})
    channels = [{"name": ch.name, "occupancy": ch.occupancy,
                 "capacity": ch.capacity, "pushed": ch.total_pushed,
                 "popped": ch.total_popped}
                for ch in sim.channels if len(ch)]
    stalled = [c for c in components
               if c["state"] in (OBS_STALL_IN, OBS_STALL_OUT)]
    return {"cycle": sim.cycle, "components": components,
            "stalled": stalled, "channels": channels}


def render_stall_snapshot(snapshot: dict) -> str:
    """Human-readable post-mortem used in DeadlockError messages."""
    parts = []
    stalled = snapshot["stalled"]
    if stalled:
        parts.append("stalled components: " + ", ".join(
            f"{c['name']}[{c['state']}"
            + (f":{c['reason']}" if c["reason"] else "") + "]"
            for c in stalled))
    waiting = [c for c in snapshot["components"]
               if c["state"] not in (OBS_IDLE,) and c not in stalled]
    busy = [c["name"] for c in waiting if c["state"] == "busy"]
    if busy:
        parts.append("busy components: " + ", ".join(busy))
    if snapshot["channels"]:
        parts.append("channels with stuck data: " + ", ".join(
            f"{ch['name']}({ch['occupancy']}/{ch['capacity']})"
            for ch in snapshot["channels"]))
    else:
        parts.append("channels with stuck data: none")
    return "; ".join(parts)
