"""Process-local metrics: counters, gauges, histograms.

A tiny Prometheus-shaped registry for the *host-side* toolchain (the
guest machine has its own cycle ledgers in ``repro.obs``). Instruments
are created once by name and shared process-wide; the registry can be
disabled, in which case every ``inc``/``set``/``observe`` is a single
flag test and an early return — cheap enough to leave instrumentation
in hot host paths permanently (bounded by a micro-test in
``tests/telemetry/test_metrics.py``).

Histograms use **fixed bucket schemes** so two runs of the same process
(or two workers of the same sweep) always produce mergeable documents:

* :data:`LATENCY_BUCKETS_S` — host latencies from 100us to ~2 minutes,
* :data:`SIZE_BUCKETS` — counts/bytes in powers of four.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TapasError


def exponential_buckets(start: float, factor: float,
                        count: int) -> Tuple[float, ...]:
    """``count`` upper bounds growing geometrically from ``start``."""
    if start <= 0 or factor <= 1 or count < 1:
        raise TapasError("exponential_buckets needs start>0, factor>1, "
                         "count>=1")
    out = []
    bound = start
    for _ in range(count):
        out.append(bound)
        bound *= factor
    return tuple(out)


#: host-latency scheme: 100us .. ~105s in x2 steps (every sweep point,
#: compile phase and simulation we time lands inside it)
LATENCY_BUCKETS_S = exponential_buckets(0.0001, 2.0, 20)

#: generic count/size scheme: 1 .. ~10^9 in x4 steps
SIZE_BUCKETS = exponential_buckets(1, 4.0, 16)


class Metric:
    """Common plumbing: every instrument belongs to one registry and
    consults its ``enabled`` flag on the hot path."""

    __slots__ = ("name", "help", "_registry")

    kind = "metric"

    def __init__(self, name: str, registry: "MetricsRegistry",
                 help: str = ""):
        self.name = name
        self.help = help
        self._registry = registry


class Counter(Metric):
    """Monotonically increasing count."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self, name, registry, help=""):
        super().__init__(name, registry, help)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise TapasError(f"counter {self.name}: negative increment")
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge(Metric):
    """A value that goes up and down (queue depth, workers alive)."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self, name, registry, help=""):
        super().__init__(name, registry, help)
        self.value = 0.0

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        self.value = value

    def add(self, delta: float) -> None:
        if not self._registry.enabled:
            return
        self.value += delta

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram(Metric):
    """Fixed-bucket histogram (cumulative-style bounds, plus +Inf).

    ``buckets`` are the inclusive upper bounds of each bucket; a final
    implicit overflow bucket catches everything larger. The scheme is
    fixed at creation so documents from different processes merge
    bucket-for-bucket.
    """

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    kind = "histogram"

    def __init__(self, name, registry, buckets: Sequence[float] = LATENCY_BUCKETS_S,
                 help: str = ""):
        super().__init__(name, registry, help)
        bounds = tuple(buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise TapasError(
                f"histogram {name}: bucket bounds must be strictly increasing")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # [+Inf overflow last]
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        lo, hi = 0, len(self.buckets)
        while lo < hi:  # first bound >= value (bisect, no import cost)
            mid = (lo + hi) // 2
            if self.buckets[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Upper bound of the bucket holding the q-quantile observation
        (None while empty; the overflow bucket reports the observed max)."""
        if not self.count:
            return None
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= target and n:
                return (self.buckets[i] if i < len(self.buckets)
                        else self.max)
        return self.max

    def as_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": round(self.sum, 9),
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean(), 9),
            "buckets": [
                {"le": bound, "count": n}
                for bound, n in zip(self.buckets, self.counts)
                if n
            ] + ([{"le": "+Inf", "count": self.counts[-1]}]
                 if self.counts[-1] else []),
        }


class MetricsRegistry:
    """Name -> instrument, one per process (or one per subsystem).

    ``enabled=False`` (how the default registry starts) turns every
    instrument mutation into a flag test: the registry can stay wired
    into hot paths for free until something opts in via :meth:`enable`.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: Dict[str, Metric] = {}

    # -- lifecycle --------------------------------------------------------

    def enable(self) -> "MetricsRegistry":
        self.enabled = True
        return self

    def disable(self) -> "MetricsRegistry":
        self.enabled = False
        return self

    def reset(self) -> None:
        """Drop every instrument (tests; a fresh sweep)."""
        self._metrics.clear()

    # -- instrument factories ---------------------------------------------

    def _get(self, name: str, cls, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, self, **kwargs)
        elif type(metric) is not cls:
            raise TapasError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help=help)

    def histogram(self, name: str,
                  buckets: Sequence[float] = LATENCY_BUCKETS_S,
                  help: str = "") -> Histogram:
        return self._get(name, Histogram, buckets=buckets, help=help)

    # -- export -----------------------------------------------------------

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def as_dict(self) -> dict:
        """JSON-safe snapshot of every instrument, sorted by name."""
        return {name: self._metrics[name].as_dict()
                for name in self.names()}


#: the process-wide default registry — disabled until a CLI entry point
#: (or a test) turns it on, so library users pay only the flag test
METRICS = MetricsRegistry(enabled=False)
