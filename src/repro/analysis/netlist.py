"""Static verification of the elaborated component/channel netlist.

TAPAS elaborates a network of task units, arbiters, demuxes, data boxes
and memory blocks joined by latency-insensitive channels (paper §III-C).
Task-parallel HLS flows (TAPA, Chi et al.) verify this graph *before*
synthesis or simulation: dangling channels, unreachable blocks and
under-buffered communication cycles are all cheaper to find structurally
than by watching a simulation hang.  This module builds a directed
channel graph from each component's declared :meth:`Component.ports` and
checks it; rule severities and the surrounding design-level rules live in
:mod:`repro.analysis.lint`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.diagnostics import Diagnostic


@dataclass
class ChannelGraph:
    """Directed wiring of one elaborated simulator.

    ``producers``/``consumers`` map a channel to the components that push
    to / pop from it. ``opaque`` components did not declare ports; their
    sensitivity channels are excluded from dangling checks.
    """

    components: List[object] = field(default_factory=list)
    channels: List[object] = field(default_factory=list)
    producers: Dict[object, List[object]] = field(default_factory=dict)
    consumers: Dict[object, List[object]] = field(default_factory=dict)
    opaque: List[object] = field(default_factory=list)
    #: channels driven or drained outside the netlist (e.g. host_spawn)
    external: Set[object] = field(default_factory=set)

    def successors(self, component) -> List[object]:
        """Components fed by any output channel of ``component``."""
        out: List[object] = []
        ports = component.ports()
        if ports is None:
            return out
        for channel in ports[1]:
            out.extend(self.consumers.get(channel, ()))
        return out


def build_channel_graph(sim, external: Sequence[object] = ()) -> ChannelGraph:
    """Wire up the graph from a :class:`~repro.sim.engine.Simulator`."""
    graph = ChannelGraph(components=list(sim.components),
                         channels=list(sim.channels),
                         external=set(external))
    opaque_touches: Set[object] = set()
    for component in sim.components:
        ports = component.ports()
        if ports is None:
            graph.opaque.append(component)
            touched = component.sensitivity() or ()
            opaque_touches.update(touched)
            continue
        inputs, outputs = ports
        for channel in inputs:
            graph.consumers.setdefault(channel, []).append(component)
        for channel in outputs:
            graph.producers.setdefault(channel, []).append(component)
    # a channel touched by an opaque component may be driven/drained by it:
    # treat it as external so it cannot be reported dangling
    graph.external.update(opaque_touches)
    return graph


def find_component_cycles(graph: ChannelGraph) -> List[List[object]]:
    """Strongly connected components of the component graph with >= 2
    members or a self-loop — each is a communication cycle that can
    deadlock if aggregate buffering is insufficient."""
    index: Dict[object, int] = {}
    lowlink: Dict[object, int] = {}
    on_stack: Set[int] = set()
    stack: List[object] = []
    counter = [0]
    sccs: List[List[object]] = []

    def strongconnect(node):
        # iterative Tarjan (recursion depth can exceed Python's limit on
        # wide designs)
        work = [(node, iter(graph.successors(node)))]
        index[node] = lowlink[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(id(node))
        while work:
            current, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(id(succ))
                    work.append((succ, iter(graph.successors(succ))))
                    advanced = True
                    break
                if id(succ) in on_stack:
                    lowlink[current] = min(lowlink[current], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[current])
            if lowlink[current] == index[current]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(id(member))
                    scc.append(member)
                    if member is current:
                        break
                if len(scc) > 1 or any(
                        member in graph.successors(member) for member in scc):
                    sccs.append(sorted(scc, key=lambda c: c.name))

    for component in graph.components:
        if component not in index:
            strongconnect(component)
    sccs.sort(key=lambda scc: scc[0].name)
    return sccs


def cycle_buffering(graph: ChannelGraph, scc: Sequence[object]) -> int:
    """Aggregate buffer slots available inside the cycle: capacities of
    channels with both endpoints in the SCC, plus component-internal
    queues (task queues, arbiter/demux pipeline registers)."""
    members = set(map(id, scc))
    slots = 0
    for channel in graph.channels:
        made_here = any(id(c) in members for c in graph.producers.get(channel, ()))
        used_here = any(id(c) in members for c in graph.consumers.get(channel, ()))
        if made_here and used_here:
            slots += channel.capacity
    for component in scc:
        queue = getattr(component, "queue", None)
        if queue is not None and hasattr(queue, "depth"):
            slots += queue.depth
        levels = getattr(component, "levels", None)
        if levels is not None:
            slots += levels + 1  # bounded in-flight _pipe entries
    return slots


def reachable_components(graph: ChannelGraph,
                         sources: Sequence[object]) -> Set[int]:
    """ids of components reachable (along channel direction) from the
    consumers of the ``sources`` channels."""
    seen: Set[int] = set()
    stack: List[object] = []
    for channel in sources:
        stack.extend(graph.consumers.get(channel, ()))
    while stack:
        component = stack.pop()
        if id(component) in seen:
            continue
        seen.add(id(component))
        stack.extend(graph.successors(component))
    return seen


def verify_netlist(sim, external: Sequence[object] = (),
                   sources: Optional[Sequence[object]] = None) -> List[Diagnostic]:
    """Structural checks on an elaborated simulator: dangling channels and
    components unreachable from the external entry channels. Returns
    ``TAP-NET-006`` diagnostics; cycle-buffering verdicts are computed by
    the lint layer, which also knows the task sizing."""
    graph = build_channel_graph(sim, external=external)
    findings: List[Diagnostic] = []

    for channel in graph.channels:
        if channel in graph.external:
            continue
        has_producer = bool(graph.producers.get(channel))
        has_consumer = bool(graph.consumers.get(channel))
        if has_producer and has_consumer:
            continue
        missing = []
        if not has_producer:
            missing.append("no producer")
        if not has_consumer:
            missing.append("no consumer")
        findings.append(Diagnostic(
            code="TAP-NET-006",
            message=(f"channel '{channel.name}' is dangling: "
                     f"{' and '.join(missing)}"),
            data={"channel": channel.name,
                  "capacity": channel.capacity,
                  "missing": missing},
        ))

    if sources:
        reachable = reachable_components(graph, sources)
        for component in graph.components:
            if component in graph.opaque:
                continue
            if id(component) not in reachable:
                findings.append(Diagnostic(
                    code="TAP-NET-006",
                    message=(f"component '{component.name}' is unreachable "
                             "from the host spawn interface"),
                    data={"component": component.name},
                ))
    return findings
