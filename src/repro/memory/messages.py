"""Message types flowing through the memory network."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

LOAD = "load"
STORE = "store"


@dataclass
class MemRequest:
    """A memory operation issued by a TXU dataflow node.

    ``tag`` is opaque routing state (unit, tile, instance, node indices);
    the out-demux network uses ``tag.port`` fields to route the response
    back (Fig 8). ``size`` in bytes; sub-word sizes exercise the staging
    buffers' alignment logic.
    """

    tag: Any
    op: str
    addr: int
    size: int
    data: Optional[int] = None      # raw payload for stores
    port: int = 0                   # response routing hint

    def is_load(self) -> bool:
        return self.op == LOAD


@dataclass
class MemResponse:
    """Completion message routed back to the requesting dataflow node."""

    tag: Any
    data: Optional[int] = None      # raw payload for loads
    port: int = 0
