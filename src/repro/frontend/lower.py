"""Lowering: Cilk-like AST -> Tapir-style parallel IR.

The parallel constructs map onto the three Tapir instructions exactly as
the paper describes (§III-F):

* ``spawn f(...)``            -> detach { call f; reattach }
* ``var x: T = spawn f(...)`` -> frame slot + detach { call; store; reattach }
  (the §IV-C shared-cache return path)
* ``spawn { ... }``           -> detach { region ; reattach }  (pipe stage)
* ``cilk_for``                -> loop whose body detaches each iteration,
  with an implicit ``sync`` at loop exit (Fig 2's root-task pattern)
* ``sync``                    -> sync

Variables declared outside a spawned region are captured **by value**:
their current value is loaded in the parent block before the detach and
marshalled through the child's Args RAM. Writable locals never cross task
boundaries — there is no register coherence between task units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SemanticError
from repro.frontend import ast
from repro.frontend.parser import parse
from repro.frontend.sema import analyze
from repro.ir import (
    Function,
    IRBuilder,
    Module,
    verify_module,
)
from repro.ir.types import F32, I1, IntType, PointerType, Type, VOID
from repro.ir.values import Constant, GlobalVariable, Value

_INT_OPS = {"+": "add", "-": "sub", "*": "mul", "/": "sdiv", "%": "srem",
            "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "ashr"}
_FLOAT_OPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}
_ICMP = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle", ">": "sgt", ">=": "sge"}
_FCMP = {"==": "oeq", "!=": "one", "<": "olt", "<=": "ole", ">": "ogt", ">=": "oge"}


@dataclass
class Binding:
    kind: str        # 'value', 'slot', 'frame_slot', 'global'
    value: Value
    type: Type


class FunctionLowerer:
    def __init__(self, module: Module, functions: Dict[str, Function],
                 globals_: Dict[str, GlobalVariable], decl: ast.FuncDecl):
        self.module = module
        self.functions = functions
        self.globals = globals_
        self.decl = decl
        self.function = functions[decl.name]
        self.builder = IRBuilder()
        self.scopes: List[Dict[str, Binding]] = []
        self.terminated = False
        self.has_spawns = ast.contains_spawn(decl)
        self._block_counter = 0

    # -- scope management --------------------------------------------------

    def _push(self):
        self.scopes.append({})

    def _pop(self):
        self.scopes.pop()

    def _bind(self, name: str, binding: Binding):
        self.scopes[-1][name] = binding

    def _lookup(self, name: str) -> Binding:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        if name in self.globals:
            var = self.globals[name]
            return Binding("global", var, var.type)
        raise SemanticError(f"undefined variable '{name}'")

    def _new_block(self, hint: str):
        self._block_counter += 1
        return self.function.add_block(f"{hint}{self._block_counter}")

    # -- entry ---------------------------------------------------------------

    def lower(self):
        entry = self.function.add_block("entry")
        self.builder.position_at_end(entry)
        self._push()
        for param, arg in zip(self.decl.params, self.function.arguments):
            self._bind(param.name, Binding("value", arg, arg.type))
        self._lower_block(self.decl.body)
        if not self.terminated:
            if self.decl.return_type is not None:
                raise SemanticError(
                    f"function '{self.decl.name}' can fall off the end "
                    "without returning a value", self.decl.line)
            self._emit_return(None)
        self._pop()

    # -- statements -----------------------------------------------------------

    def _lower_block(self, block: ast.Block):
        self._push()
        for stmt in block.statements:
            if self.terminated:
                raise SemanticError("unreachable code after a terminator",
                                    stmt.line)
            self._lower_stmt(stmt)
        self._pop()

    def _lower_stmt(self, stmt: ast.Stmt):
        if getattr(stmt, "line", None) is not None:
            self.builder.current_loc = stmt.line
        if isinstance(stmt, ast.Block):
            self._lower_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._lower_var_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.SpawnStmt):
            self._lower_spawn(stmt)
        elif isinstance(stmt, ast.SyncStmt):
            after = self._new_block("after_sync")
            self.builder.sync(after)
            self.builder.position_at_end(after)
        elif isinstance(stmt, ast.Return):
            value = self._lower_expr(stmt.value) if stmt.value else None
            self._emit_return(value)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr, discard=True)
        else:
            raise SemanticError(f"cannot lower {type(stmt).__name__}",
                                stmt.line)

    def _emit_return(self, value: Optional[Value]):
        if self.has_spawns:
            # implicit Cilk sync at function exit: children's effects are
            # visible before the parent's completion joins upward
            ret_block = self._new_block("ret_sync")
            self.builder.sync(ret_block)
            self.builder.position_at_end(ret_block)
        self.builder.ret(value)
        self.terminated = True

    def _lower_var_decl(self, stmt: ast.VarDecl):
        if stmt.spawn_init is not None:
            self._lower_spawn_result_decl(stmt)
            return
        slot = self.builder.alloca(stmt.declared_type, stmt.name)
        if stmt.init is not None:
            self.builder.store(self._lower_expr(stmt.init), slot)
        self._bind(stmt.name, Binding("slot", slot, stmt.declared_type))

    def _lower_spawn_result_decl(self, stmt: ast.VarDecl):
        """``var x: T = spawn f(...)`` — detached call writing a frame slot."""
        call = stmt.spawn_init
        callee = self.functions[call.callee]
        args = [self._lower_expr(a) for a in call.args]
        slot = self.builder.alloca(stmt.declared_type, stmt.name, in_frame=True)

        detached = self._new_block("spawn")
        cont = self._new_block("cont")
        self.builder.detach(detached, cont)
        self.builder.position_at_end(detached)
        result = self.builder.call(callee, args)
        self.builder.store(result, slot)
        self.builder.reattach(cont)
        self.builder.position_at_end(cont)
        self._bind(stmt.name, Binding("frame_slot", slot, stmt.declared_type))

    def _lower_assign(self, stmt: ast.Assign):
        value = self._lower_expr(stmt.value)
        target = stmt.target
        if isinstance(target, ast.VarRef):
            binding = self._lookup(target.name)
            if binding.kind not in ("slot", "frame_slot"):
                raise SemanticError(
                    f"cannot assign to '{target.name}'", stmt.line)
            self.builder.store(value, binding.value)
        elif isinstance(target, ast.Index):
            self.builder.store(value, self._lower_address(target))
        else:
            raise SemanticError("bad assignment target", stmt.line)

    def _lower_if(self, stmt: ast.If):
        cond = self._lower_condition(stmt.condition)
        then_block = self._new_block("then")
        else_block = self._new_block("else") if stmt.else_body else None
        join = self._new_block("join")
        # explicit None test: an empty BasicBlock is falsy (len == 0)
        self.builder.condbr(cond, then_block,
                            join if else_block is None else else_block)

        self.builder.position_at_end(then_block)
        self._lower_block(stmt.then_body)
        then_terminated = self.terminated
        if not then_terminated:
            self.builder.br(join)
        self.terminated = False

        else_terminated = False
        if stmt.else_body is not None:
            self.builder.position_at_end(else_block)
            if isinstance(stmt.else_body, ast.Block):
                self._lower_block(stmt.else_body)
            else:
                self._lower_stmt(stmt.else_body)
            else_terminated = self.terminated
            if not else_terminated:
                self.builder.br(join)
            self.terminated = False

        if then_terminated and (stmt.else_body is not None and else_terminated):
            # both arms returned: join is unreachable; remove it
            self.function.blocks.remove(join)
            del self.function._blocks_by_name[join.name]
            self.terminated = True
            return
        self.builder.position_at_end(join)

    def _lower_while(self, stmt: ast.While):
        cond_block = self._new_block("while_cond")
        body_block = self._new_block("while_body")
        exit_block = self._new_block("while_exit")
        self.builder.br(cond_block)
        self.builder.position_at_end(cond_block)
        cond = self._lower_condition(stmt.condition)
        self.builder.condbr(cond, body_block, exit_block)
        self.builder.position_at_end(body_block)
        self._lower_block(stmt.body)
        if not self.terminated:
            self.builder.br(cond_block)
        self.terminated = False
        self.builder.position_at_end(exit_block)

    def _lower_for(self, stmt: ast.For):
        self._push()
        self._lower_stmt(stmt.init)
        cond_block = self._new_block("for_cond")
        body_block = self._new_block("for_body")
        latch_block = self._new_block("for_latch")
        exit_block = self._new_block("for_exit")

        self.builder.br(cond_block)
        self.builder.position_at_end(cond_block)
        cond = self._lower_condition(stmt.condition)
        self.builder.condbr(cond, body_block, exit_block)

        self.builder.position_at_end(body_block)
        if stmt.parallel:
            self._lower_detached_region(stmt.body, latch_block)
        else:
            self._lower_block(stmt.body)
            if self.terminated:
                raise SemanticError("loop body may not return", stmt.line)
            self.builder.br(latch_block)

        self.builder.position_at_end(latch_block)
        self._lower_stmt(stmt.step)
        self.builder.br(cond_block)

        self.builder.position_at_end(exit_block)
        if stmt.parallel:
            # cilk_for has an implicit sync at loop exit
            after = self._new_block("for_sync")
            self.builder.sync(after)
            self.builder.position_at_end(after)
        self._pop()

    def _lower_spawn(self, stmt: ast.SpawnStmt):
        if stmt.call is not None:
            callee = self.functions[stmt.call.callee]
            args = [self._lower_expr(a) for a in stmt.call.args]
            detached = self._new_block("spawn")
            cont = self._new_block("cont")
            self.builder.detach(detached, cont)
            self.builder.position_at_end(detached)
            self.builder.call(callee, args)
            self.builder.reattach(cont)
            self.builder.position_at_end(cont)
            return
        cont = self._new_block("cont")
        self._lower_detached_region(stmt.block, cont)
        self.builder.position_at_end(cont)

    def _lower_detached_region(self, region: ast.Block, continuation):
        """Detach ``region``; control resumes at ``continuation``.

        Captures every outer scalar local the region reads by loading it
        in the current (parent) block — the values become the child task's
        arguments via live-in analysis.
        """
        captured: Dict[str, Binding] = {}
        for name in self._captured_names(region):
            binding = self._lookup(name)
            if binding.kind == "slot":
                value = self.builder.load(binding.value, f"{name}.cap")
                captured[name] = Binding("value", value, binding.type)

        detached = self._new_block("detached")
        self.builder.detach(detached, continuation)
        self.builder.position_at_end(detached)
        self._push()
        for name, binding in captured.items():
            self._bind(name, binding)
        self._lower_block(region)
        self._pop()
        if self.terminated:
            raise SemanticError("spawned region may not return", region.line)
        self.builder.reattach(continuation)

    def _captured_names(self, region: ast.Block):
        """Outer scalar locals read anywhere inside the region (in
        deterministic first-use order)."""
        names = []
        seen = set()
        declared_anywhere = set()
        for node in ast.walk(region):
            if isinstance(node, ast.VarDecl):
                declared_anywhere.add(node.name)
        for node in ast.walk(region):
            if isinstance(node, ast.VarRef) and node.name not in seen:
                seen.add(node.name)
                if node.name in declared_anywhere:
                    continue
                try:
                    binding = self._lookup(node.name)
                except SemanticError:
                    continue
                if binding.kind == "slot":
                    names.append(node.name)
        return names

    # -- expressions -----------------------------------------------------------

    def _lower_condition(self, expr: ast.Expr) -> Value:
        value = self._lower_expr(expr)
        if value.type == I1:
            return value
        if isinstance(value.type, IntType):
            return self.builder.icmp("ne", value, Constant(value.type, 0))
        raise SemanticError("condition must be integer or boolean", expr.line)

    def _lower_address(self, expr: ast.Index) -> Value:
        base = self._lower_expr(expr.base)
        if not base.type.is_pointer():
            raise SemanticError("indexing a non-pointer", expr.line)
        index = self._lower_expr(expr.index)
        elem = base.type.pointee
        return self.builder.gep(base, [index], [elem.size_bytes])

    def _lower_expr(self, expr: ast.Expr, discard: bool = False) -> Optional[Value]:
        if isinstance(expr, ast.IntLit):
            return Constant(expr.type or None, expr.value) \
                if expr.type else Constant(I32, expr.value)
        if isinstance(expr, ast.FloatLit):
            return Constant(F32, expr.value)
        if isinstance(expr, ast.VarRef):
            binding = self._lookup(expr.name)
            if binding.kind in ("slot", "frame_slot"):
                return self.builder.load(binding.value, f"{expr.name}.val")
            return binding.value
        if isinstance(expr, ast.Index):
            return self.builder.load(self._lower_address(expr))
        if isinstance(expr, ast.AddrOf):
            return self._lower_address(expr.target)
        if isinstance(expr, ast.CallExpr):
            callee = self.functions[expr.callee]
            args = [self._lower_expr(a) for a in expr.args]
            call = self.builder.call(callee, args)
            return None if discard else call
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        raise SemanticError(f"cannot lower expression {type(expr).__name__}",
                            expr.line)

    def _lower_unary(self, expr: ast.Unary) -> Value:
        if expr.op == "-":
            operand = self._lower_expr(expr.operand)
            zero = Constant(operand.type, 0 if isinstance(operand.type, IntType)
                            else 0.0)
            op = "sub" if isinstance(operand.type, IntType) else "fsub"
            return self.builder.binop(op, zero, operand)
        if expr.op == "!":
            cond = self._lower_condition(expr.operand)
            return self.builder.xor(cond, Constant(I1, 1))
        raise SemanticError(f"unknown unary {expr.op}", expr.line)

    def _lower_binary(self, expr: ast.Binary) -> Value:
        if expr.op in ("&&", "||"):
            # hardware evaluates both sides (no short circuit): document'd
            lhs = self._lower_condition(expr.lhs)
            rhs = self._lower_condition(expr.rhs)
            return (self.builder.and_(lhs, rhs) if expr.op == "&&"
                    else self.builder.or_(lhs, rhs))

        lhs = self._lower_expr(expr.lhs)
        is_float = lhs.type.is_float()
        if not is_float and expr.op in ("*", "/", "%"):
            reduced = self._strength_reduce(expr.op, lhs, expr.rhs)
            if reduced is not None:
                return reduced
        rhs = self._lower_expr(expr.rhs)
        if expr.op in _ICMP:
            if is_float:
                return self.builder.fcmp(_FCMP[expr.op], lhs, rhs)
            return self.builder.icmp(_ICMP[expr.op], lhs, rhs)
        table = _FLOAT_OPS if is_float else _INT_OPS
        if expr.op not in table:
            raise SemanticError(f"operator '{expr.op}' not supported for "
                                f"{lhs.type!r}", expr.line)
        return self.builder.binop(table[expr.op], lhs, rhs)

    def _strength_reduce(self, op: str, lhs: Value,
                         rhs_ast: ast.Expr) -> Optional[Value]:
        """Strength reduction for power-of-two constants (the Stage-2
        "Task Opt" of the toolchain): dividers are the most expensive
        functional units in the TXU, and synthesis tools never emit one
        for a constant power-of-two divisor.

        * ``x * 2^k``  ->  ``x << k``
        * ``x / 2^k``  ->  round-toward-zero shift sequence
          ``(x + ((x >>s 31) >>u (32-k))) >>s k`` (exact for negatives)
        * ``x % 2^k``  ->  ``x - (x / 2^k) << k``
        """
        if not isinstance(rhs_ast, ast.IntLit):
            return None
        divisor = rhs_ast.value
        if divisor <= 0 or divisor & (divisor - 1):
            return None  # not a positive power of two
        k = divisor.bit_length() - 1
        type_ = lhs.type
        if not isinstance(type_, IntType):
            return None
        if op == "*":
            if k == 0:
                return lhs
            return self.builder.shl(lhs, Constant(type_, k))
        # signed division rounding toward zero: bias negatives by 2^k - 1
        if k == 0:
            quotient = lhs
        else:
            bits = type_.bits
            sign = self.builder.ashr(lhs, Constant(type_, bits - 1))
            bias = self.builder.binop("lshr", sign, Constant(type_, bits - k))
            biased = self.builder.add(lhs, bias)
            quotient = self.builder.ashr(biased, Constant(type_, k))
        if op == "/":
            return quotient
        # op == "%": remainder = x - quotient * 2^k
        scaled = (quotient if k == 0
                  else self.builder.shl(quotient, Constant(type_, k)))
        return self.builder.sub(lhs, scaled)


def lower_program(program: ast.Program, name: str = "program") -> Module:
    """Lower an analysed AST to a verified IR module."""
    module = Module(name)
    globals_: Dict[str, GlobalVariable] = {}
    for decl in program.globals:
        var = module.add_global(
            decl.name, PointerType(decl.element_type),
            decl.element_type.size_bytes * decl.count)
        globals_[decl.name] = var

    functions: Dict[str, Function] = {}
    for decl in program.functions:
        func = Function(decl.name, [p.type for p in decl.params],
                        [p.name for p in decl.params],
                        decl.return_type or VOID)
        module.add_function(func)
        functions[decl.name] = func

    for decl in program.functions:
        FunctionLowerer(module, functions, globals_, decl).lower()

    verify_module(module)
    return module


def compile_source(source: str, name: str = "program") -> Module:
    """Front door: Cilk-like source text -> verified parallel IR module."""
    from repro.telemetry.spans import TRACER

    with TRACER.span("frontend.parse", category="compile", module=name):
        program = parse(source)
    with TRACER.span("frontend.sema", category="compile", module=name):
        program = analyze(program)
    with TRACER.span("frontend.lower", category="compile", module=name):
        return lower_program(program, name)
