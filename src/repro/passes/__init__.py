"""Compiler analyses and transforms over the parallel IR (Stage 1 of TAPAS)."""

from repro.passes.cfg import (
    post_order,
    predecessor_map,
    reachable_blocks,
    reverse_post_order,
)
from repro.passes.concurrency_opt import TaskSizing, analyze_concurrency
from repro.passes.dataflow_graph import (
    BlockDFG,
    DFGNode,
    build_block_dfg,
    build_task_dfgs,
    classify,
    is_register_access,
)
from repro.passes.dominators import DominatorInfo, compute_dominators
from repro.passes.liveness import (
    LivenessInfo,
    compute_liveness,
    region_live_ins,
)
from repro.passes.inline import (
    inline_call,
    inline_calls,
    prune_unreachable_functions,
)
from repro.passes.loops import Loop, find_loops, max_loop_depth
from repro.passes.optimize import (
    common_subexpression_elimination,
    constant_fold,
    eliminate_dead_code,
    global_value_numbering,
    optimize_function,
    optimize_module,
)
from repro.passes.task_extraction import extract_tasks
from repro.passes.taskgraph import (
    DETACHED,
    FUNCTION_ROOT,
    DirectSpawn,
    Task,
    TaskGraph,
)

__all__ = [
    "post_order", "predecessor_map", "reachable_blocks", "reverse_post_order",
    "TaskSizing", "analyze_concurrency",
    "BlockDFG", "DFGNode", "build_block_dfg", "build_task_dfgs", "classify",
    "is_register_access",
    "DominatorInfo", "compute_dominators",
    "LivenessInfo", "compute_liveness", "region_live_ins",
    "Loop", "find_loops", "max_loop_depth",
    "inline_call", "inline_calls", "prune_unreachable_functions",
    "common_subexpression_elimination", "constant_fold",
    "eliminate_dead_code", "global_value_numbering",
    "optimize_function", "optimize_module",
    "extract_tasks",
    "DETACHED", "FUNCTION_ROOT", "DirectSpawn", "Task", "TaskGraph",
]
