"""Affine memory-dependence analysis: address resolution and alias oracle."""

from repro.analysis.memdep import (
    DISJOINT,
    MAY,
    MUST,
    ROOT_ARGUMENT,
    ROOT_GLOBAL,
    ROOT_INSTANCE,
    ROOT_UNKNOWN,
    AddressExpr,
    MemEffect,
    PointerResolver,
    compare_effects,
    compute_summaries,
    effects_of_blocks,
)
from repro.frontend import compile_source
from repro.ir.instructions import Load, Store
from repro.ir.values import Argument, GlobalVariable


def expr(root_kind, root, const=0, terms=None, exact=True):
    return AddressExpr(root_kind, root, const, terms, exact)


def eff(address, size=4, write=True):
    return MemEffect(address, size, write, ops=())


ARG_A = Argument("a", None, 0)
ARG_B = Argument("b", None, 1)
GLOB = GlobalVariable("g", None, 64)


class TestRootsVerdict:
    def test_same_root_same_offset_must(self):
        a = eff(expr(ROOT_ARGUMENT, ARG_A, 8))
        b = eff(expr(ROOT_ARGUMENT, ARG_A, 8))
        assert compare_effects(a, b, [], False) == MUST

    def test_same_root_disjoint_offsets(self):
        a = eff(expr(ROOT_ARGUMENT, ARG_A, 0))
        b = eff(expr(ROOT_ARGUMENT, ARG_A, 4))
        assert compare_effects(a, b, [], False) == DISJOINT

    def test_partial_overlap_is_must(self):
        a = eff(expr(ROOT_ARGUMENT, ARG_A, 0), size=8)
        b = eff(expr(ROOT_ARGUMENT, ARG_A, 4), size=4)
        assert compare_effects(a, b, [], False) == MUST

    def test_distinct_arguments_disjoint(self):
        a = eff(expr(ROOT_ARGUMENT, ARG_A))
        b = eff(expr(ROOT_ARGUMENT, ARG_B))
        assert compare_effects(a, b, [], False) == DISJOINT

    def test_argument_vs_global_disjoint(self):
        # documented restrict-style assumption
        a = eff(expr(ROOT_ARGUMENT, ARG_A))
        b = eff(expr(ROOT_GLOBAL, GLOB))
        assert compare_effects(a, b, [], False) == DISJOINT

    def test_unknown_root_is_may(self):
        a = eff(expr(ROOT_UNKNOWN, None))
        b = eff(expr(ROOT_ARGUMENT, ARG_A))
        assert compare_effects(a, b, [], False) == MAY

    def test_instance_roots_disjoint_from_everything(self):
        a = eff(expr(ROOT_INSTANCE, ARG_A))
        for other in (expr(ROOT_INSTANCE, ARG_A), expr(ROOT_GLOBAL, GLOB),
                      expr(ROOT_ARGUMENT, ARG_A)):
            assert compare_effects(a, eff(other), [], False) == DISJOINT

    def test_widened_expr_is_may(self):
        a = eff(expr(ROOT_ARGUMENT, ARG_A).widened())
        b = eff(expr(ROOT_ARGUMENT, ARG_A, 100))
        assert compare_effects(a, b, [], False) == MAY


def first_function(source, name="m"):
    module = compile_source(source, name)
    return module, module.functions[0]


def shared_accesses_of(block):
    from repro.passes.dataflow_graph import is_register_access

    return [inst for inst in block.instructions
            if isinstance(inst, (Load, Store)) and not is_register_access(inst)]


def shared_accesses(function):
    """The function's non-register loads/stores, via the summary machinery."""
    return [inst for block in function.blocks
            for inst in shared_accesses_of(block)]


class TestPointerResolver:
    def test_affine_index_resolves_to_argument_root(self):
        _, f = first_function("""
        func f(a: i32*, i: i32) {
          a[i + 3] = 7;
        }
        """)
        store = next(i for i in shared_accesses(f) if isinstance(i, Store))
        address = PointerResolver(f).resolve(store.pointer)
        assert address.root_kind == ROOT_ARGUMENT
        assert address.root is f.arguments[0]
        assert address.const == 12          # (i + 3) * 4 bytes
        assert list(address.terms.values()) == [4]
        assert address.exact

    def test_loop_induction_recognised_as_step(self):
        """a[i] vs a[i] across instances is disjoint (the induction term
        shifts by the step); a[i] vs a[i+1] collides with the neighbour
        instance."""
        from repro.analysis.mhp import spawn_contexts
        from repro.passes import extract_tasks

        module, f = first_function("""
        func f(a: i32*, n: i32) {
          cilk_for (var i: i32 = 0; i < n; i = i + 1) {
            a[i] = a[i + 1];
          }
        }
        """)
        ctx = spawn_contexts(extract_tasks(module))[0]
        context = list(ctx.par_blocks) + list(ctx.region)
        resolver = PointerResolver(f)
        accesses = [i for block in ctx.region for i in shared_accesses_of(block)]
        store = next(i for i in accesses if isinstance(i, Store))
        load = next(i for i in accesses if isinstance(i, Load))
        st_eff = MemEffect(resolver.resolve(store.pointer), 4, True, (store,))
        ld_eff = MemEffect(resolver.resolve(load.pointer), 4, False, (load,))
        assert compare_effects(st_eff, st_eff, context, True) == DISJOINT
        assert compare_effects(st_eff, ld_eff, context, True) == MUST


class TestSummaries:
    def test_callee_effects_substituted_at_callsite(self):
        module, _ = first_function("""
        func inc(p: i32*) {
          p[0] = p[0] + 1;
        }
        func caller(a: i32*) {
          inc(a);
        }
        """, "subst")
        caller = module.function("caller")
        summaries = compute_summaries(module)
        effects = effects_of_blocks(caller.blocks, PointerResolver(caller),
                                    summaries)
        writes = [e for e in effects if e.is_write]
        assert len(writes) == 1
        assert writes[0].expr.root_kind == ROOT_ARGUMENT
        assert writes[0].expr.root is caller.arguments[0]
        assert writes[0].via  # provenance: imported through the call

    def test_callee_frame_becomes_instance_root(self):
        module, _ = first_function("""
        func leaf(x: i32) -> i32 {
          var t: i32 = x + 1;
          return t;
        }
        func caller(a: i32*) {
          a[0] = leaf(a[0]);
        }
        """, "frames")
        caller = module.function("caller")
        summaries = compute_summaries(module)
        effects = effects_of_blocks(caller.blocks, PointerResolver(caller),
                                    summaries)
        kinds = {e.expr.root_kind for e in effects}
        assert ROOT_INSTANCE not in kinds or all(
            compare_effects(e, o, [], False) == DISJOINT
            for e in effects if e.expr.root_kind == ROOT_INSTANCE
            for o in effects if o is not e)

    def test_recursive_summary_reaches_fixpoint(self):
        module, f = first_function("""
        func down(a: i32*, n: i32) {
          if (n > 0) {
            a[n] = n;
            down(a, n - 1);
          }
        }
        """, "rec")
        summaries = compute_summaries(module)
        writes = [e for e in summaries[f] if e.is_write]
        assert writes
        assert all(e.expr.root_kind == ROOT_ARGUMENT for e in writes)
