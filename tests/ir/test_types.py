"""Unit tests for the IR type system."""

import pytest

from repro.ir import F32, I1, I8, I32, I64, VOID, IntType, PointerType, ptr


class TestTypeIdentity:
    def test_same_width_ints_compare_equal(self):
        assert IntType(32) == I32
        assert IntType(32) is not I32  # equality, not identity

    def test_different_widths_differ(self):
        assert I32 != I64
        assert I8 != I1

    def test_pointer_equality_follows_pointee(self):
        assert ptr(I32) == ptr(I32)
        assert ptr(I32) != ptr(I64)

    def test_types_are_hashable(self):
        s = {I32, I64, ptr(I32), ptr(I32), F32}
        assert len(s) == 4

    def test_void_vs_int(self):
        assert VOID != I32
        assert VOID.is_void()
        assert not I32.is_void()


class TestSizes:
    @pytest.mark.parametrize("type_, size", [
        (I1, 1), (I8, 1), (I32, 4), (I64, 8), (F32, 4), (ptr(I32), 8), (VOID, 0),
    ])
    def test_size_bytes(self, type_, size):
        assert type_.size_bytes == size


class TestIntSemantics:
    def test_wrap_positive_overflow(self):
        assert I8.wrap(128) == -128
        assert I8.wrap(255) == -1
        assert I8.wrap(256) == 0

    def test_wrap_negative(self):
        assert I8.wrap(-129) == 127

    def test_wrap_i1(self):
        assert I1.wrap(3) == 1
        assert I1.wrap(2) == 0

    def test_range_bounds(self):
        assert I32.min_value == -(2 ** 31)
        assert I32.max_value == 2 ** 31 - 1

    def test_unsupported_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(13)


class TestPointers:
    def test_pointer_to_void_rejected(self):
        with pytest.raises(ValueError):
            PointerType(VOID)

    def test_nested_pointer(self):
        pp = ptr(ptr(I32))
        assert pp.pointee == ptr(I32)
        assert pp.pointee.pointee == I32

    def test_classification(self):
        assert ptr(I32).is_pointer()
        assert I32.is_integer()
        assert F32.is_float()
        assert not F32.is_integer()
