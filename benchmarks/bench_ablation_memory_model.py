"""Ablation: cache vs scratchpad memory model (paper §III-E).

The data box supports both backends; the paper evaluates the cache model
only, because caches are the pre-requisite for dynamic task parallelism
over irregular data. The scratchpad gives deterministic low latency —
this quantifies what the cache's miss handling costs on regular kernels
(data conveniently preloaded), i.e. the gap streaming HLS flows exploit.
"""

import pytest

from dataclasses import replace

from repro.reports import bench_record, render_table
from repro.workloads import REGISTRY

NAMES = ["matrix_add", "saxpy", "stencil", "dedup"]


def run_with_model(name, model):
    workload = REGISTRY.get(name)
    config = replace(workload.default_config(ntiles=4), memory_model=model)
    result = workload.run(config=config, scale=2)
    assert result.correct, f"{name} wrong under {model}"
    return result.cycles


def test_ablation_cache_vs_scratchpad(benchmark, save_result, save_json):
    def run():
        return {
            name: {model: run_with_model(name, model)
                   for model in ("cache", "scratchpad")}
            for name in NAMES
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name in NAMES:
        cache = data[name]["cache"]
        spm = data[name]["scratchpad"]
        rows.append([name, cache, spm, f"{cache / spm:.2f}x"])
    text = render_table(
        ["Benchmark", "cache cycles", "scratchpad cycles", "cache cost"],
        rows, title="Ablation — cache vs scratchpad memory model")
    save_result("ablation_memory_model", text)
    save_json("ablation_memory_model", [
        bench_record(name,
                     config={"ntiles": 4, "memory_model": model, "scale": 2},
                     cycles=data[name][model])
        for name in NAMES for model in ("cache", "scratchpad")])

    for name in NAMES:
        # deterministic SRAM is never slower than the miss-taking cache
        assert data[name]["scratchpad"] <= data[name]["cache"]
    # a bandwidth-hungry kernel pays visibly for the cache's compulsory
    # misses (saxpy at 4 tiles is spawner-bound, so matrix shows it best)
    matrix_cost = data["matrix_add"]["cache"] / data["matrix_add"]["scratchpad"]
    assert matrix_cost > 1.5
