"""Scratchpad: a private, fixed-latency memory (the data box's second
backend in Fig 8). TAPAS evaluates the cache model only; the scratchpad is
provided for completeness and for the ablation benches."""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.memory.backing import MainMemory
from repro.memory.messages import MemRequest, MemResponse
from repro.sim import NEVER, OBS_BUSY, OBS_IDLE, OBS_STALL_OUT, Channel, Component


class Scratchpad(Component):
    """Single-ported SRAM with deterministic access latency."""

    def __init__(self, name: str, backing: MainMemory,
                 request_in: Channel, response_out: Channel,
                 latency: int = 1):
        super().__init__(name)
        self.backing = backing
        self.request_in = request_in
        self.response_out = response_out
        self.latency = max(1, latency)
        self._pipe: Deque[Tuple[int, MemResponse]] = deque()
        self.accesses = 0

    def tick(self, cycle: int):
        if (self._pipe and self._pipe[0][0] <= cycle
                and self.response_out.can_push()):
            self.response_out.push(self._pipe.popleft()[1])

        if self.request_in.can_pop():
            req: MemRequest = self.request_in.pop()
            self.accesses += 1
            if req.is_load():
                data = self.backing.read_int(req.addr, req.size, signed=False)
            else:
                self.backing.write_int(req.addr, req.size, req.data or 0)
                data = None
            self._pipe.append(
                (cycle + self.latency, MemResponse(req.tag, data, port=req.port)))

    def sensitivity(self):
        return (self.request_in, self.response_out)

    def ports(self):
        return ((self.request_in,), (self.response_out,))

    def next_wake(self, cycle):
        # constant latency keeps _pipe sorted; a due head was either
        # pushed this tick (our own push wakes us) or is backpressured
        # (a pop on response_out wakes us)
        if self._pipe:
            head = self._pipe[0][0]
            if head > cycle:
                return head
        return NEVER

    def is_busy(self):
        return bool(self._pipe)

    def obs_classify(self, cycle):
        if (self._pipe and self._pipe[0][0] <= cycle
                and not self.response_out.can_push()):
            return OBS_STALL_OUT, "resp-backpressure"
        if self._pipe or self.request_in.can_pop():
            return OBS_BUSY, None
        return OBS_IDLE, None

    def stats(self):
        return {"accesses": self.accesses}
