"""Tapir-style parallel IR: types, values, instructions, builder, verifier.

This is the substrate the TAPAS toolchain consumes (paper §III-F): an
LLVM-like IR extended with ``detach``/``reattach``/``sync`` to express
fork-join parallelism directly in the compiler representation.
"""

from repro.ir.basicblock import BasicBlock
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.instructions import (
    GEP,
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    Detach,
    FCmp,
    ICmp,
    Instruction,
    Load,
    Reattach,
    Ret,
    Select,
    Store,
    Sync,
)
from repro.ir.module import Module
from repro.ir.printer import print_function, print_module
from repro.ir.textparser import parse_ir
from repro.ir.types import (
    F32,
    I1,
    I8,
    I16,
    I32,
    I64,
    VOID,
    FloatType,
    IntType,
    PointerType,
    Type,
    VoidType,
    ptr,
)
from repro.ir.values import (
    Argument,
    Constant,
    GlobalVariable,
    Value,
    const,
)
from repro.ir.verifier import verify_function, verify_module

__all__ = [
    "BasicBlock", "IRBuilder", "Function", "Module",
    "GEP", "Alloca", "BinaryOp", "Br", "Call", "Cast", "CondBr", "Detach",
    "FCmp", "ICmp", "Instruction", "Load", "Reattach", "Ret", "Select",
    "Store", "Sync",
    "print_function", "print_module", "parse_ir",
    "F32", "I1", "I8", "I16", "I32", "I64", "VOID",
    "FloatType", "IntType", "PointerType", "Type", "VoidType", "ptr",
    "Argument", "Constant", "GlobalVariable", "Value", "const",
    "verify_function", "verify_module",
]
