"""Dynamic determinacy-race checking over a simulation trace.

The task units and TXU tiles emit structured trace events — ``task-start``
(with parent gid + spawn-issue seq), ``spawn-issue``/``call-issue``,
``sync-resume``/``sync-pass``, ``call-return`` and one ``mem`` event per
shared-memory access. Because Tapir parallelism is series-parallel, those
events are enough to reconstruct the *logical* happens-before relation of
the run (the determinacy-race order — spawn edges and join edges, not
physical timing):

* everything an instance does before a spawn issue happens-before the
  spawned subtree;
* a subtree happens-before whatever its parent does after the sync (or
  call return) that joins it;
* two accesses unordered by those edges, touching overlapping bytes,
  with at least one write, are a **dynamic determinacy race**.

The checker is used two ways:

* :meth:`Trace.race_check` — standalone: did this run race?
* :func:`cross_validate` — compare against the static verdicts of
  :mod:`repro.analysis.races`. A dynamic conflict the static analysis
  did not flag is an analyzer soundness bug (the property test asserts
  there are none); a static MUST race that never manifests in a given
  run is merely unexercised, not wrong.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import AnalysisError
from repro.ir.instructions import Store

_EPILOGUE_NODE = -1


@dataclass
class MemAccess:
    """One shared-memory access observed in the trace."""

    seq: int
    gid: tuple
    op: str          # "load" | "store"
    addr: int
    size: int
    sid: int
    node: int
    inst: object     # originating IR instruction, None for epilogue stores
    cycle: int

    @property
    def is_write(self) -> bool:
        return self.op == "store"

    def static_key(self) -> tuple:
        if self.node == _EPILOGUE_NODE:
            return ("ret", self.sid)
        return ("inst", id(self.inst))

    def describe(self) -> str:
        what = "store" if self.is_write else "load"
        loc = getattr(self.inst, "loc", None)
        where = f" (line {loc})" if loc is not None else \
            (" (return-value store)" if self.node == _EPILOGUE_NODE else "")
        return (f"{what} [{self.addr}..{self.addr + self.size}) by instance "
                f"{self.gid} at cycle {self.cycle}{where}")


@dataclass
class DynamicConflict:
    """Two unordered overlapping accesses with at least one write."""

    a: MemAccess
    b: MemAccess

    def key_pair(self) -> frozenset:
        return frozenset((self.a.static_key(), self.b.static_key()))

    def describe(self) -> str:
        return f"{self.a.describe()}  <-races->  {self.b.describe()}"


@dataclass
class _Instance:
    gid: tuple
    parent_gid: Optional[tuple]
    origin_seq: Optional[int]
    is_call: bool
    call_return_seq: Optional[int] = None


class DynamicRaceChecker:
    """Reconstructs happens-before from a traced run and finds races."""

    def __init__(self, trace, graph=None):
        self.graph = graph
        self.instances: Dict[tuple, _Instance] = {}
        #: per-gid sorted seqs of sync join points (resume or pass)
        self.syncs: Dict[tuple, List[int]] = {}
        self.accesses: List[MemAccess] = []
        self._ingest(trace)

    # -- trace ingestion ---------------------------------------------------

    def _ingest(self, trace):
        saw_payload = False
        for event in trace.events:
            payload = event.payload
            if payload is None:
                continue
            saw_payload = True
            if event.kind == "task-start":
                gid = payload["gid"]
                self.instances[gid] = _Instance(
                    gid, payload.get("parent_gid"),
                    payload.get("origin_seq"), payload.get("call", False))
            elif event.kind in ("sync-resume", "sync-pass"):
                self.syncs.setdefault(payload["gid"], []).append(event.seq)
            elif event.kind == "call-return":
                child = payload.get("child_gid")
                if child is not None and child in self.instances:
                    self.instances[child].call_return_seq = event.seq
            elif event.kind == "mem":
                self.accesses.append(MemAccess(
                    event.seq, payload["gid"], payload["op"],
                    payload["addr"], payload["size"], payload["sid"],
                    payload["node"], payload.get("inst"), event.cycle))
        if not saw_payload and len(trace.events) > 0:
            raise AnalysisError(
                "trace has no structured analysis events — enable tracing "
                "before the run (Trace(enabled=True)) to use the dynamic "
                "race checker")

    # -- happens-before ----------------------------------------------------

    def _chain(self, gid: tuple) -> List[Tuple[tuple, Optional[int]]]:
        """Ancestor chain: [(gid, origin_seq_into_parent), ...] from the
        instance up to the root."""
        chain = []
        seen = set()
        current = self.instances.get(gid)
        while current is not None and current.gid not in seen:
            seen.add(current.gid)
            chain.append((current.gid, current.origin_seq))
            if current.parent_gid is None:
                break
            current = self.instances.get(current.parent_gid)
        return chain

    def _joined(self, parent_gid: tuple, child_gid: tuple,
                child_origin: Optional[int], before: int) -> bool:
        """Did ``parent_gid`` join ``child_gid``'s subtree before ``before``?"""
        child = self.instances.get(child_gid)
        if child is not None and child.is_call:
            return (child.call_return_seq is not None
                    and child.call_return_seq < before)
        if child_origin is None:
            return False
        return any(child_origin < r < before
                   for r in self.syncs.get(parent_gid, ()))

    def ordered(self, a: MemAccess, b: MemAccess) -> bool:
        """Happens-before between two accesses (either direction)."""
        if a.gid == b.gid:
            return True  # same instance: one sequential strand
        if a.seq > b.seq:
            a, b = b, a
        chain_a = self._chain(a.gid)
        chain_b = self._chain(b.gid)
        index_b = {gid: i for i, (gid, _) in enumerate(chain_b)}

        for i, (gid, _) in enumerate(chain_a):
            if gid not in index_b:
                continue
            j = index_b[gid]
            # gid is the lowest common ancestor instance
            if i == 0:
                # a's instance is an ancestor of b's: a HB b iff a precedes
                # the spawn that leads down to b.
                _, origin = chain_b[j - 1]
                return origin is not None and a.seq < origin
            if j == 0:
                # b's instance is an ancestor of a's: a HB b iff b follows
                # a join of the subtree containing a.
                sub_gid, sub_origin = chain_a[i - 1]
                return self._joined(gid, sub_gid, sub_origin, b.seq)
            # both hang off (different) children of the common ancestor
            a_gid, a_origin = chain_a[i - 1]
            b_gid, b_origin = chain_b[j - 1]
            if a_origin is None or b_origin is None:
                return False
            if a_origin < b_origin:
                return self._joined(gid, a_gid, a_origin, b_origin)
            return False  # b's subtree began first: no forward HB path
        return False  # disconnected (shouldn't happen): treat as parallel

    # -- conflict detection ------------------------------------------------

    def conflicts(self) -> List[DynamicConflict]:
        """Every unordered overlapping access pair with >= 1 write."""
        by_byte: Dict[int, List[int]] = {}
        candidate_pairs: Set[Tuple[int, int]] = set()
        for index, access in enumerate(self.accesses):
            for byte in range(access.addr, access.addr + access.size):
                bucket = by_byte.setdefault(byte, [])
                for other in bucket:
                    prior = self.accesses[other]
                    if prior.gid == access.gid:
                        continue
                    if not (prior.is_write or access.is_write):
                        continue
                    candidate_pairs.add((other, index))
                bucket.append(index)

        found: List[DynamicConflict] = []
        for ia, ib in sorted(candidate_pairs):
            a, b = self.accesses[ia], self.accesses[ib]
            if not self.ordered(a, b):
                found.append(DynamicConflict(a, b))
        return found


# ---------------------------------------------------------------------------
# Static/dynamic cross-validation
# ---------------------------------------------------------------------------

def _ret_store_keys(graph) -> Dict[int, tuple]:
    """Map id(store-instruction) -> ("ret", callee_root_sid) for the
    elided ret_ptr stores of direct spawns: the simulator performs them
    as hardware epilogues (node == -1), so the static instruction and the
    dynamic event must be matched by the callee unit instead."""
    from repro.analysis.mhp import region_blocks

    keys: Dict[int, tuple] = {}
    for task in graph.tasks:
        for spawn in task.direct_spawns.values():
            if spawn.ret_ptr is None:
                continue
            callee_sid = graph.root_for_function[spawn.callee].sid
            for block in region_blocks(spawn.detach):
                for inst in block.instructions:
                    if isinstance(inst, Store) and inst.pointer is spawn.ret_ptr:
                        keys[id(inst)] = ("ret", callee_sid)
    return keys


@dataclass
class CrossValidation:
    """Outcome of checking a traced run against the static findings."""

    #: static findings whose access pair raced in this run
    confirmed: list
    #: static findings not observed racing in this run (unexercised — for
    #: MUST verdicts this usually means the input didn't hit the overlap)
    unobserved: list
    #: dynamic conflicts with no covering static finding: analyzer bugs
    missed: List[DynamicConflict]

    @property
    def sound(self) -> bool:
        """No dynamic race escaped the static analysis."""
        return not self.missed


def cross_validate(findings, trace, graph) -> CrossValidation:
    """Compare static race findings with a traced execution.

    ``findings`` are :class:`~repro.analysis.races.RaceFinding` objects
    (or diagnostics carrying ``.ops``); ``graph`` must be the *same*
    TaskGraph the executed design was generated from, so instruction
    identities line up."""
    checker = DynamicRaceChecker(trace, graph)
    dynamic = checker.conflicts()
    ret_keys = _ret_store_keys(graph)

    def op_keys(op) -> Set[tuple]:
        keys = {("inst", id(op))}
        if id(op) in ret_keys:
            keys.add(ret_keys[id(op)])
        return keys

    def finding_pairs(finding) -> Set[frozenset]:
        if hasattr(finding, "a"):  # RaceFinding
            side_a, side_b = finding.a.ops, finding.b.ops
        else:  # Diagnostic with .ops: all pairs within
            side_a = side_b = finding.ops
        pairs = set()
        for op_a in side_a:
            for op_b in side_b:
                for ka in op_keys(op_a):
                    for kb in op_keys(op_b):
                        pairs.add(frozenset((ka, kb)))
        return pairs

    static_pairs: Set[frozenset] = set()
    per_finding = []
    for finding in findings:
        pairs = finding_pairs(finding)
        static_pairs |= pairs
        per_finding.append((finding, pairs))

    dynamic_keys = {conflict.key_pair() for conflict in dynamic}
    confirmed = [f for f, pairs in per_finding if pairs & dynamic_keys]
    unobserved = [f for f, pairs in per_finding if not (pairs & dynamic_keys)]
    missed = [c for c in dynamic if c.key_pair() not in static_pairs]
    return CrossValidation(confirmed, unobserved, missed)
