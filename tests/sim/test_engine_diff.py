"""Differential tests: event and compiled engines vs the dense oracle.

Every example program and every registered workload must produce
bit-identical cycle counts, return values and architectural stats under
all three engines — ``stats()["engine"]`` (host wall-clock) is the only
key allowed to differ. CI runs the same matrix via ``repro diff``.
"""

import glob
import os

import pytest

from repro.accel import AcceleratorConfig, build_accelerator
from repro.frontend import compile_source
from repro.obs import Observer
from repro.workloads import REGISTRY

EXAMPLES = sorted(
    path for path in glob.glob(os.path.join(
        os.path.dirname(__file__), "..", "..", "examples", "programs",
        "*.cilk"))
    # deadlock_* fixtures cannot terminate by design; their engine parity
    # is covered by the postmortem-equality property tests
    if "deadlock_" not in os.path.basename(path))


def _strip(stats):
    stats = dict(stats)
    stats.pop("engine", None)
    return stats


def _run_example(path, engine):
    from repro.cli import _default_profile_args

    with open(path) as handle:
        source = handle.read()
    name = os.path.splitext(os.path.basename(path))[0]
    module = compile_source(source, name)
    accel = build_accelerator(
        module, AcceleratorConfig(default_ntiles=2, engine=engine))
    function = module.functions[0]
    args = _default_profile_args(function, accel.memory, 8)
    result = accel.run(function.name, args)
    return result.cycles, result.retval, _strip(result.stats)


@pytest.mark.parametrize("engine", ["event", "compiled"])
@pytest.mark.parametrize("path", EXAMPLES,
                         ids=[os.path.basename(p) for p in EXAMPLES])
def test_example_programs_agree(path, engine):
    assert _run_example(path, "dense") == _run_example(path, engine)


@pytest.mark.parametrize("engine", ["event", "compiled"])
@pytest.mark.parametrize("name", REGISTRY.names())
def test_workloads_agree(name, engine):
    workload = REGISTRY.get(name)
    dense = workload.run(workload.default_config(2, engine="dense"))
    other = workload.run(workload.default_config(2, engine=engine))
    assert dense.correct and other.correct
    assert dense.cycles == other.cycles
    assert dense.retval == other.retval
    assert _strip(dense.stats) == _strip(other.stats)


def test_workload_agrees_with_observer_attached():
    """Observer synthesis over fast-forwarded spans must reproduce the
    dense engine's per-cycle ledgers and probes exactly."""
    workload = REGISTRY.get("saxpy")
    observers = {}
    cycles = {}
    for engine in ("dense", "event"):
        observer = Observer()
        result = workload.run(workload.default_config(2, engine=engine),
                              observer=observer)
        observers[engine] = observer
        cycles[engine] = result.cycles
    assert cycles["dense"] == cycles["event"]
    od, oe = observers["dense"], observers["event"]
    assert od.as_dict() == oe.as_dict()
    for name, ledger in od.ledgers.items():
        assert ledger.timeline == oe.ledgers[name].timeline, name


def test_memory_bound_config_agrees():
    """The fast-forward sweet spot: tiny cache, single MSHR, long DRAM
    latency. Exactly the regime where a scheduling bug would skew
    counts."""
    from repro.accel import ARRIA_10
    from repro.memory.cache import CacheParams

    workload = REGISTRY.get("saxpy")
    outcomes = {}
    for engine in ("dense", "event", "compiled"):
        config = workload.default_config(
            2, engine=engine, board=ARRIA_10,
            cache=CacheParams(size_bytes=1024, mshr_count=1),
            dram_latency_cycles=200)
        result = workload.run(config, scale=4)
        outcomes[engine] = (result.cycles, result.retval,
                            _strip(result.stats))
        assert result.correct
    assert outcomes["dense"] == outcomes["event"]
    assert outcomes["dense"] == outcomes["compiled"]
    # and the event engine actually skipped something on this workload
    event_config = workload.default_config(
        2, engine="event", board=ARRIA_10,
        cache=CacheParams(size_bytes=1024, mshr_count=1),
        dram_latency_cycles=200)
    result = workload.run(event_config, scale=4)
    assert result.stats["engine"]["fast_forwarded_cycles"] > 0


def test_deadlock_postmortem_parity():
    """A program that deadlocks must fail at the same cycle with the
    same postmortem attribution under both engines."""
    from repro.errors import DeadlockError
    from repro.sim import Component, Simulator

    class Starved(Component):
        def __init__(self, name, inp):
            super().__init__(name)
            self.inp = inp

        def tick(self, cycle):
            if self.inp.can_pop():
                self.inp.pop()

        def sensitivity(self):
            return (self.inp,)

    outcomes = {}
    for engine in ("dense", "event", "compiled"):
        sim = Simulator(engine=engine)
        ch = sim.add_channel("never", capacity=1)
        sim.add_component(Starved("s", ch))
        with pytest.raises(DeadlockError) as excinfo:
            sim.run(lambda: False, max_cycles=100_000)
        outcomes[engine] = (excinfo.value.cycle, str(excinfo.value),
                            excinfo.value.postmortem)
    assert outcomes["dense"] == outcomes["event"]
    # a custom component routes "compiled" through the event fallback;
    # the error contract must survive that path too
    assert outcomes["dense"] == outcomes["compiled"]


def test_check_repro_under_event_engine(capsys):
    """The CLI reproducibility gate passes under the event engine."""
    from repro.cli import main

    assert main(["run", "fibonacci", "--check-repro"]) == 0
    out = capsys.readouterr().out
    assert "reproducible" in out
