"""Content-addressed on-disk result cache.

A sweep point's result is a pure function of (evaluator, point spec,
the program text it compiles, the repro code version). The cache key is
the SHA-256 of exactly that tuple in canonical JSON, so:

* editing a workload's source changes ``program_text`` → new key,
* changing any config field changes the spec → new key,
* editing ANY file under ``src/repro`` changes the code fingerprint →
  every key rolls over (simulator behaviour may have changed; stale
  cycle counts are worse than a cold cache — this is what makes it safe
  for the benchmarks to cache by default),
* a new repro release changes the version → same rollover.

Layout: ``<root>/sweep/<key[:2]>/<key>.json`` — two-level fanout keeps
directories small. Writes are atomic (tmp file + rename), so a killed
sweep never leaves a half-written entry; a corrupted or unreadable
entry is evicted and recomputed, never fatal.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro import __version__

#: environment override for the cache root (the CLI's --cache-dir wins)
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over the contents of every ``repro`` source file,
    computed once per process. Folding this into every cache key means
    a result can only ever be replayed by the exact code that produced
    it — local edits between releases cannot serve stale results."""
    global _fingerprint
    if _fingerprint is None:
        root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _fingerprint = digest.hexdigest()
    return _fingerprint


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN. Raises
    ``TypeError`` on non-JSON values — a spec that cannot serialise
    canonically cannot be cached (or shipped to a worker) correctly."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


class ResultCache:
    """Content-addressed store for sweep-point results."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0       # get() served a valid entry
        self.misses = 0     # get() found nothing usable
        self.evictions = 0  # corrupted entries dropped

    # -- keys -------------------------------------------------------------

    def key(self, evaluator: str, spec: Dict[str, Any],
            program_text: str = "") -> str:
        payload = canonical_json({
            "evaluator": evaluator,
            "spec": spec,
            "program": program_text,
            "version": __version__,
            "code": code_fingerprint(),
        })
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def path_for(self, key: str) -> Path:
        return self.root / "sweep" / key[:2] / (key + ".json")

    # -- entries ----------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached record for ``key``, or None. A missing entry is a
        plain miss; an unreadable one is evicted and reported as a miss
        (it will be recomputed and rewritten)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            self._evict(path)
            self.misses += 1
            return None
        if not isinstance(entry, dict) or entry.get("key") != key \
                or "record" not in entry:
            self._evict(path)
            self.misses += 1
            return None
        self.hits += 1
        return entry["record"]

    def counters(self) -> Dict[str, int]:
        """Hit/miss/corruption counters for the sweep telemetry block."""
        return {"hits": self.hits, "misses": self.misses,
                "corruption_evictions": self.evictions}

    def put(self, key: str, record: Dict[str, Any]) -> None:
        """Store ``record`` atomically (tmp + rename: concurrent workers
        racing on the same key both write complete entries, last one
        wins — they are identical by construction)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"key": key, "version": __version__, "record": record}
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _evict(self, path: Path) -> None:
        self.evictions += 1
        try:
            os.unlink(path)
        except OSError:
            pass

    def __repr__(self):
        return f"<ResultCache {self.root}>"
