"""Shared L1 cache model: set-associative, write-back, MSHR-based.

The paper synthesises a 16 KB L1 shared by all task units, kept coherent
with the SoC's L2 over AXI (§III, §III-E). This model reproduces the
timing behaviour the evaluation depends on: hits pipeline at one per
cycle, misses overlap up to the MSHR count, and dirty evictions consume
AXI bandwidth. Functional data is read/written against the backing
:class:`~repro.memory.backing.MainMemory` in arrival order, so program
semantics never depend on timing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.memory.backing import MainMemory
from repro.memory.messages import MemRequest, MemResponse
from repro.sim import (
    NEVER,
    OBS_BUSY,
    OBS_IDLE,
    OBS_STALL_IN,
    OBS_STALL_OUT,
    Channel,
    Component,
)


@dataclass
class CacheParams:
    """Geometry and timing of the shared L1.

    ``banks`` > 1 builds a line-interleaved multi-bank L1 (total capacity
    split across banks, one request port per bank) — the paper's §VI
    future-work direction for lifting the bandwidth wall.
    """

    size_bytes: int = 16 * 1024      # the paper's 16K L1
    line_bytes: int = 32
    associativity: int = 4
    hit_latency: int = 2
    mshr_count: int = 4              # paper §VI: "limited support for
                                     # multiple outstanding cache misses"
    subword_penalty: int = 1         # staging-buffer alignment cycles
    banks: int = 1

    def __post_init__(self):
        if self.banks < 1 or self.banks & (self.banks - 1):
            raise ConfigError("cache banks must be a power of two")
        if self.size_bytes % (self.line_bytes * self.associativity * self.banks):
            raise ConfigError("cache size must divide into banks*lines*ways")
        self.num_sets = self.size_bytes // (
            self.line_bytes * self.associativity * self.banks)

    def bank_params(self) -> "CacheParams":
        """Parameters of one bank slice."""
        return CacheParams(
            size_bytes=self.size_bytes // self.banks,
            line_bytes=self.line_bytes,
            associativity=self.associativity,
            hit_latency=self.hit_latency,
            mshr_count=self.mshr_count,
            subword_penalty=self.subword_penalty,
            banks=1)

    @property
    def sets(self) -> int:
        return self.num_sets


@dataclass
class _Way:
    tag: int = -1
    valid: bool = False
    dirty: bool = False
    last_used: int = 0


@dataclass
class _MSHR:
    line_addr: int
    waiters: List[Tuple[MemRequest, Optional[int]]] = field(default_factory=list)


class Cache(Component):
    """The shared L1. One request port in, one response port out, plus a
    DRAM request/response pair (the AXI master)."""

    def __init__(self, name: str, params: CacheParams, backing: MainMemory,
                 request_in: Channel, response_out: Channel,
                 dram_request: Channel, dram_response: Channel,
                 index_shift: int = 0):
        super().__init__(name)
        self.params = params
        #: in a banked L1 the low line bits select the bank, so set
        #: indexing skips them (otherwise only 1/banks of the sets used)
        self.index_shift = index_shift
        self.backing = backing
        self.request_in = request_in
        self.response_out = response_out
        self.dram_request = dram_request
        self.dram_response = dram_response

        self._sets: List[List[_Way]] = [
            [_Way() for _ in range(params.associativity)]
            for _ in range(params.sets)
        ]
        self._mshrs: Dict[int, _MSHR] = {}
        self._ready_responses: Deque[Tuple[int, MemResponse]] = deque()
        self._pending_writebacks: Deque[object] = deque()
        #: why the request port stalled this cycle (obs_classify only)
        self._blocked: Optional[str] = None

        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.stores = 0
        self.loads = 0

    # -- address helpers ------------------------------------------------------

    def _line_addr(self, addr: int) -> int:
        return addr // self.params.line_bytes

    def _set_index(self, line_addr: int) -> int:
        return (line_addr >> self.index_shift) % self.params.sets

    def _lookup(self, line_addr: int) -> Optional[_Way]:
        for way in self._sets[self._set_index(line_addr)]:
            if way.valid and way.tag == line_addr:
                return way
        return None

    # -- functional access -----------------------------------------------------

    def _functional(self, req: MemRequest) -> Optional[int]:
        """Perform the data movement now; timing is layered on top."""
        if req.is_load():
            self.loads += 1
            return self.backing.read_int(req.addr, req.size, signed=False)
        self.stores += 1
        self.backing.write_int(req.addr, req.size, req.data or 0)
        return None

    # -- the clocked behaviour ---------------------------------------------

    def tick(self, cycle: int):
        self._blocked = None
        self._drain_writebacks()
        self._handle_fill(cycle)
        self._accept_request(cycle)
        self._send_response(cycle)

    def _drain_writebacks(self):
        if self._pending_writebacks and self.dram_request.can_push():
            self.dram_request.push(self._pending_writebacks.popleft())
            self.writebacks += 1

    def _handle_fill(self, cycle: int):
        if not self.dram_response.can_pop():
            return
        self._apply_fill(self.dram_response.pop(), cycle)

    def _apply_fill(self, fill, cycle: int):
        """Install a popped DRAM fill (channel-free: the compiled engine
        pops the response itself and delegates here)."""
        line_addr = fill.tag  # we tag DRAM fills with the line address
        mshr = self._mshrs.pop(line_addr, None)
        if mshr is None:
            # a response with no MSHR would be a protocol error (e.g. a
            # writeback echoed back); never install state for it
            from repro.errors import SimulationError

            raise SimulationError(
                f"cache {self.name}: fill for line {line_addr} with no MSHR")
        self._install(line_addr, cycle)
        for req, data in mshr.waiters:
            latency = self.params.hit_latency + self._subword(req)
            self._ready_responses.append(
                (cycle + latency,
                 MemResponse(req.tag, data, port=req.port)))
        if any(not r.is_load() for r, _ in mshr.waiters):
            way = self._lookup(line_addr)
            if way:
                way.dirty = True

    def _install(self, line_addr: int, cycle: int):
        ways = self._sets[self._set_index(line_addr)]
        victim = None
        for way in ways:
            if not way.valid:
                victim = way
                break
        if victim is None:
            victim = min(ways, key=lambda w: w.last_used)
            self.evictions += 1
            if victim.dirty:
                # timing-only writeback of the victim line
                self._pending_writebacks.append(
                    MemRequest(tag=victim.tag, op="store",
                               addr=victim.tag * self.params.line_bytes,
                               size=self.params.line_bytes))
        victim.tag = line_addr
        victim.valid = True
        victim.dirty = False
        victim.last_used = cycle

    def _subword(self, req: MemRequest) -> int:
        """Sub-word or straddling accesses pay the staging-buffer penalty
        (the Fig 8 allocator table reads aligned words and shifts)."""
        aligned = (req.size >= 4 and req.addr % 4 == 0)
        return 0 if aligned else self.params.subword_penalty

    def _accept_request(self, cycle: int):
        if not self.request_in.can_pop():
            return
        req: MemRequest = self.request_in.peek()
        line_addr = self._line_addr(req.addr)
        way = self._lookup(line_addr)

        if way is not None:
            self.request_in.pop()
            data = self._functional(req)
            way.last_used = cycle
            if not req.is_load():
                way.dirty = True
            self.hits += 1
            latency = self.params.hit_latency + self._subword(req)
            self._ready_responses.append(
                (cycle + latency, MemResponse(req.tag, data, port=req.port)))
            return

        # miss path
        mshr = self._mshrs.get(line_addr)
        if mshr is not None:
            # secondary miss: merge into the outstanding fill
            self.request_in.pop()
            data = self._functional(req)
            mshr.waiters.append((req, data))
            self.misses += 1
            return
        if len(self._mshrs) >= self.params.mshr_count:
            self._blocked = "mshr-full"
            return  # structural stall: leave the request queued
        if not self.dram_request.can_push():
            self._blocked = "dram-backpressure"
            return
        self.request_in.pop()
        data = self._functional(req)
        self._mshrs[line_addr] = _MSHR(line_addr, [(req, data)])
        self.dram_request.push(
            MemRequest(tag=line_addr, op="load",
                       addr=line_addr * self.params.line_bytes,
                       size=self.params.line_bytes))
        self.misses += 1

    def _send_response(self, cycle: int):
        if (self._ready_responses and self._ready_responses[0][0] <= cycle
                and self.response_out.can_push()):
            self.response_out.push(self._ready_responses.popleft()[1])

    def sensitivity(self):
        return (self.request_in, self.response_out,
                self.dram_request, self.dram_response)

    def ports(self):
        return ((self.request_in, self.dram_response),
                (self.response_out, self.dram_request))

    def next_wake(self, cycle):
        # the only pure timer is the hit-latency countdown of the head
        # ready-response (sends are head-only and in order, so entries
        # behind it cannot act sooner even if their deadline is earlier).
        # Everything else — fills, MSHR drains, writeback retries, a
        # response we just pushed — arrives as movement on a sensitivity
        # channel, including our own pops/pushes this tick.
        if self._ready_responses:
            head = self._ready_responses[0][0]
            if head > cycle:
                return head
        return NEVER

    def is_busy(self):
        return bool(self._ready_responses or self._mshrs
                    or self._pending_writebacks)

    def obs_classify(self, cycle):
        if self._blocked == "mshr-full":
            return OBS_STALL_IN, "mshr-full"
        if self._blocked == "dram-backpressure":
            return OBS_STALL_OUT, "dram-backpressure"
        if (self._ready_responses and self._ready_responses[0][0] <= cycle
                and not self.response_out.can_push()):
            return OBS_STALL_OUT, "resp-backpressure"
        if (self._mshrs or self._ready_responses or self._pending_writebacks
                or self.request_in.can_pop()):
            return OBS_BUSY, None
        return OBS_IDLE, None

    def stats(self):
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "loads": self.loads,
            "stores": self.stores,
        }
