"""Textual IR parser: the inverse of :mod:`repro.ir.printer`.

Round-tripping IR through text is how a compiler toolchain stays
debuggable: dump after a pass, edit by hand, feed it back. The accepted
grammar is exactly what :func:`repro.ir.printer.print_module` emits.

Two-pass per function: first collect block labels and instruction result
names (so forward branch targets resolve), then build instructions.
Constants carry no explicit type in the printed form, so their type is
inferred from context (the sibling operand, the pointee of a store
target, the callee signature, or i32/f32 by default).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import IRError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    GEP,
    INT_BINOPS,
    FLOAT_BINOPS,
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    Detach,
    FCmp,
    ICmp,
    Load,
    Reattach,
    Ret,
    Select,
    Store,
    Sync,
)
from repro.ir.module import Module
from repro.ir.types import (
    F32,
    I1,
    I8,
    I16,
    I32,
    I64,
    VOID,
    FloatType,
    IntType,
    PointerType,
    Type,
)
from repro.ir.values import Constant, Value

_BASE_TYPES = {"i1": I1, "i8": I8, "i16": I16, "i32": I32, "i64": I64,
               "f32": F32, "void": VOID}

_FUNC_RE = re.compile(
    r"^func @(?P<name>[\w.]+)\((?P<args>.*)\) -> (?P<ret>[\w*]+) \{$")
_GLOBAL_RE = re.compile(
    r"^@(?P<name>[\w.]+): (?P<type>[\w*]+) \[(?P<size>\d+) bytes\]$")
_LABEL_RE = re.compile(r"^(?P<label>[\w.]+):$")
_ASSIGN_RE = re.compile(r"^%(?P<dest>[\S]+) = (?P<rest>.+)$")


def parse_type(text: str) -> Type:
    text = text.strip()
    stars = 0
    while text.endswith("*"):
        text = text[:-1]
        stars += 1
    if text not in _BASE_TYPES:
        raise IRError(f"unknown type in IR text: {text!r}")
    type_ = _BASE_TYPES[text]
    for _ in range(stars):
        type_ = PointerType(type_)
    return type_


def _split_args(text: str) -> List[str]:
    """Split a comma-separated operand list (no nesting in this grammar
    except call parens handled by callers)."""
    parts = [p.strip() for p in text.split(",")]
    return [p for p in parts if p]


class _FunctionParser:
    def __init__(self, module: Module, function: Function,
                 body_lines: List[str]):
        self.module = module
        self.function = function
        self.lines = body_lines
        self.values: Dict[str, Value] = {}
        self.blocks: Dict[str, BasicBlock] = {}
        for arg in function.arguments:
            self.values[arg.name] = arg

    # -- operand resolution -----------------------------------------------

    def _operand(self, text: str, expect: Optional[Type]) -> Value:
        text = text.strip()
        if text.startswith("%"):
            name = text[1:]
            if name not in self.values:
                raise IRError(f"use of undefined value %{name}")
            return self.values[name]
        if text.startswith("@"):
            var = self.module.global_(text[1:])
            if var is None:
                raise IRError(f"unknown global {text}")
            return var
        # constant
        if "." in text or "e" in text or "inf" in text or "nan" in text:
            try:
                return Constant(expect if isinstance(expect, FloatType) else F32,
                                float(text))
            except ValueError:
                pass
        try:
            value = int(text, 0)
        except ValueError:
            raise IRError(f"cannot parse operand {text!r}")
        if isinstance(expect, (IntType, FloatType)):
            return Constant(expect, value)
        return Constant(I32, value)

    def _infer_pair(self, a_text: str, b_text: str,
                    default: Type) -> Tuple[Value, Value]:
        """Resolve two operands where at most one may be an untyped
        constant: the typed one decides."""
        a_is_ref = a_text.strip().startswith(("%", "@"))
        b_is_ref = b_text.strip().startswith(("%", "@"))
        if a_is_ref:
            a = self._operand(a_text, None)
            b = self._operand(b_text, a.type)
            return a, b
        if b_is_ref:
            b = self._operand(b_text, None)
            a = self._operand(a_text, b.type)
            return a, b
        return (self._operand(a_text, default),
                self._operand(b_text, default))

    # -- two-pass parse -------------------------------------------------------

    def run(self):
        # pass 1: create blocks
        for line in self.lines:
            match = _LABEL_RE.match(line.strip())
            if match:
                label = match.group("label")
                block = self.function.add_block(label)
                if block.name != label:
                    raise IRError(f"duplicate block label {label}")
                self.blocks[label] = block
        # pass 2: instructions (value names resolve forward within the
        # dominance discipline because defs precede uses textually)
        current: Optional[BasicBlock] = None
        for line in self.lines:
            label = _LABEL_RE.match(line.strip())
            if label:
                current = self.blocks[label.group("label")]
                continue
            text = line.strip()
            if not text or text.startswith(";"):
                continue
            if current is None:
                raise IRError(f"instruction before any label: {text}")
            self._parse_instruction(current, text)

    def _block(self, name: str) -> BasicBlock:
        if name not in self.blocks:
            raise IRError(f"unknown block {name!r}")
        return self.blocks[name]

    # -- instruction forms -----------------------------------------------

    def _parse_instruction(self, block: BasicBlock, text: str):
        assign = _ASSIGN_RE.match(text)
        dest = None
        if assign:
            dest = assign.group("dest")
            text = assign.group("rest")

        inst = self._build(block, text, dest)
        block.append(inst)
        if dest is not None:
            if dest in self.values:
                raise IRError(f"redefinition of %{dest}")
            inst.name = dest
            self.values[dest] = inst

    def _build(self, block, text: str, dest):
        op, _, rest = text.partition(" ")
        rest = rest.strip()

        if op in ("alloca", "alloca.frame"):
            return Alloca(parse_type(rest), in_frame=(op == "alloca.frame"))

        if op == "load":
            type_text, _, ptr_text = rest.partition(" ")
            pointer = self._operand(ptr_text, None)
            load = Load(pointer)
            if load.type != parse_type(type_text):
                raise IRError(f"load type mismatch in: {text}")
            return load

        if op == "store":
            value_text, ptr_text = _split_args(rest)
            pointer = self._operand(ptr_text, None)
            if not pointer.type.is_pointer():
                raise IRError(f"store to non-pointer in: {text}")
            value = self._operand(value_text, pointer.type.pointee)
            return Store(value, pointer)

        if op == "gep":
            base_text, _, idx_text = rest.partition("[")
            base = self._operand(base_text, None)
            pairs = _split_args(idx_text.rstrip("]"))
            indices, strides = [], []
            for pair in pairs:
                index_text, _, stride_text = pair.rpartition("*")
                indices.append(self._operand(index_text, I32))
                strides.append(int(stride_text))
            return GEP(base, indices, strides)

        if op == "icmp":
            predicate, _, operands = rest.partition(" ")
            a, b = self._infer_pair(*_split_args(operands), default=I32)
            return ICmp(predicate, a, b)

        if op == "fcmp":
            predicate, _, operands = rest.partition(" ")
            a, b = self._infer_pair(*_split_args(operands), default=F32)
            return FCmp(predicate, a, b)

        if op == "select":
            cond_text, a_text, b_text = _split_args(rest)
            cond = self._operand(cond_text, I1)
            a, b = self._infer_pair(a_text, b_text, default=I32)
            return Select(cond, a, b)

        if op in ("trunc", "sext", "zext", "sitofp", "fptosi", "bitcast"):
            value_text, _, type_text = rest.partition(" to ")
            return Cast(op, self._operand(value_text, None),
                        parse_type(type_text))

        if op == "call":
            return self._build_call(text)

        if op == "br":
            return Br(self._block(rest))

        if op == "condbr":
            cond_text, then_text, else_text = _split_args(rest)
            return CondBr(self._operand(cond_text, I1),
                          self._block(then_text), self._block(else_text))

        if op == "ret":
            if not rest:
                return Ret()
            return Ret(self._operand(rest, self.function.return_type))

        if op == "detach":
            detached_text, continue_text = _split_args(rest)
            if not continue_text.startswith("continue "):
                raise IRError(f"malformed detach: {text}")
            return Detach(self._block(detached_text),
                          self._block(continue_text[len("continue "):]))

        if op == "reattach":
            return Reattach(self._block(rest))

        if op == "sync":
            return Sync(self._block(rest))

        if op in INT_BINOPS or op in FLOAT_BINOPS:
            type_text, _, operands = rest.partition(" ")
            type_ = parse_type(type_text)
            a_text, b_text = _split_args(operands)
            return BinaryOp(op, self._operand(a_text, type_),
                            self._operand(b_text, type_))

        raise IRError(f"cannot parse instruction: {text!r}")

    def _build_call(self, text: str):
        match = re.match(r"^call @(?P<callee>[\w.]+)\((?P<args>.*)\)$",
                         text.strip())
        if not match:
            raise IRError(f"malformed call: {text}")
        callee = self.module.function(match.group("callee"))
        if callee is None:
            raise IRError(f"call to unknown function @{match.group('callee')}")
        arg_texts = _split_args(match.group("args"))
        if len(arg_texts) != len(callee.arguments):
            raise IRError(f"argument count mismatch in: {text}")
        args = [self._operand(t, formal.type)
                for t, formal in zip(arg_texts, callee.arguments)]
        return Call(callee, args)


def parse_ir(text: str, name: str = "parsed") -> Module:
    """Parse the printer's textual format back into a module."""
    lines = [line.rstrip() for line in text.splitlines()]
    module = None
    signatures: List[Tuple[Function, List[str]]] = []

    index = 0
    while index < len(lines):
        line = lines[index].strip()
        if line.startswith("; module"):
            module = Module(line[len("; module"):].strip() or name)
        elif _GLOBAL_RE.match(line):
            match = _GLOBAL_RE.match(line)
            if module is None:
                module = Module(name)
            module.add_global(match.group("name"),
                              parse_type(match.group("type")),
                              int(match.group("size")))
        elif _FUNC_RE.match(line):
            if module is None:
                module = Module(name)
            match = _FUNC_RE.match(line)
            arg_types, arg_names = [], []
            args_text = match.group("args").strip()
            if args_text:
                for piece in args_text.split(","):
                    arg_name, _, type_text = piece.partition(":")
                    arg_names.append(arg_name.strip())
                    arg_types.append(parse_type(type_text))
            function = Function(match.group("name"), arg_types, arg_names,
                                parse_type(match.group("ret")))
            module.add_function(function)
            body: List[str] = []
            index += 1
            while index < len(lines) and lines[index].strip() != "}":
                body.append(lines[index])
                index += 1
            signatures.append((function, body))
        index += 1

    if module is None:
        raise IRError("no module content found in IR text")
    # bodies parsed after all signatures exist, so calls resolve forward
    for function, body in signatures:
        _FunctionParser(module, function, body).run()
    return module
