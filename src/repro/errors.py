"""Exception hierarchy shared across the TAPAS reproduction toolchain."""


class TapasError(Exception):
    """Base class for all errors raised by this package."""


class IRError(TapasError):
    """Malformed IR: type mismatch, bad operand, broken invariant."""


class VerificationError(IRError):
    """Raised by the IR verifier with a description of every violation."""

    def __init__(self, problems):
        self.problems = list(problems)
        super().__init__("; ".join(self.problems))


class FrontendError(TapasError):
    """Base class for errors in the Cilk-like language frontend."""

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"line {line}:{column or 0}: {message}"
        super().__init__(message)


class LexError(FrontendError):
    """Unrecognised character or malformed token."""


class ParseError(FrontendError):
    """Syntax error while parsing the Cilk-like language."""


class SemanticError(FrontendError):
    """Type error or misuse of a name in an otherwise well-formed parse."""


class PassError(TapasError):
    """A compiler pass was applied to IR it cannot handle."""


class AnalysisError(TapasError):
    """The static-analysis stage refused the program (e.g. a determinacy
    race at an analysis level that gates synthesis)."""

    def __init__(self, message, diagnostics=None):
        self.diagnostics = list(diagnostics or [])
        super().__init__(message)


class SynthesisError(TapasError):
    """The HLS toolchain could not generate an accelerator."""


class SimulationError(TapasError):
    """The cycle-level simulator reached an inconsistent state."""


class DeadlockError(SimulationError):
    """No component made progress for an entire settling window.

    ``postmortem`` (when the engine can produce one) is a dict with the
    per-component stall attribution (``components``/``stalled``: name,
    state, reason) and every channel holding stuck data (``channels``) —
    see :func:`repro.obs.stall_snapshot`.
    """

    def __init__(self, cycle, detail="", postmortem=None):
        self.cycle = cycle
        self.postmortem = postmortem
        message = f"simulation deadlocked at cycle {cycle}"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class MemoryError_(SimulationError):
    """Out-of-range or misaligned access in the simulated memory system."""


class ConfigError(TapasError):
    """Invalid hardware parameterisation (Stage 3)."""
