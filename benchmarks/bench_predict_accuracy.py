"""Cross-validation: the analytical performance model vs the simulator.

The static predictor (``repro predict`` / the ``static`` sweep
evaluator) exists so design-space exploration can rank points without
paying for event-driven simulation. This bench measures whether it has
earned that role, over a benchmark-suite × tiles × scale matrix:

* **rank fidelity** — Spearman correlation between predicted and
  simulated cycle counts (what a sweep actually consumes);
* **magnitude** — median absolute relative cycle error;
* **attribution** — how often the predicted top bottleneck falls in the
  same coarse class (memory / spawn-throughput / serial-call) as the
  simulator's top stall source;
* **cost** — aggregate speedup of the predictor over the event engine
  across the matrix.

Known model limits, visible in the table: recursive call-join spans are
conservatively over-predicted (mergesort ~2x: the model cannot know
which cleanup loop a merge takes), and for spawner-serial-bound codes
(saxpy) the model names the cause — root spawn rate — where the
simulator's ledger counts the symptom, idle tiles waiting on loads.

``image_scale`` at scale 4 is excluded: that point deadlocks under the
default queue depths (a known repro limit, unrelated to the predictor).
The slowest scale-4 sims (stencil, mergesort) are also left out to keep
the bench under a minute; the remaining 72-point grid spans 3 decades
of cycle counts.
"""

from repro.analysis.perfcheck import PerfChecker
from repro.reports import render_table
from repro.reports.benchjson import bench_record
from repro.workloads import REGISTRY

NAMES = ["matrix_add", "saxpy", "stencil", "dedup", "mergesort",
         "fibonacci", "image_scale"]
TILES = (1, 2, 4, 8)
#: workloads cheap enough to simulate at scale 4 with an observer on
SCALE4 = ("matrix_add", "saxpy", "dedup", "fibonacci")

MIN_POINTS = 30
MIN_SPEARMAN = 0.90
MAX_MEDIAN_ERROR = 0.35
MIN_SPEEDUP = 1000.0


def _grid():
    for name in NAMES:
        scales = (1, 2, 4) if name in SCALE4 else (1, 2)
        for scale in scales:
            for tiles in TILES:
                yield name, tiles, scale


def test_predict_accuracy(benchmark, save_result, save_json):
    checker = PerfChecker()

    def run():
        from repro.analysis.perfcheck import CheckReport
        report = CheckReport()
        for name, tiles, scale in _grid():
            workload = REGISTRY.get(name)
            report.records.append(
                checker.check_point(workload, tiles, scale))
        for name, (_model, build) in checker._models.items():
            report.build_seconds[name] = build
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for r in report.records:
        rows.append([
            r.workload, r.tiles, r.scale, r.actual_cycles,
            r.predicted_cycles, f"{r.rel_error:+.1%}",
            r.predicted_class, r.actual_class,
            "yes" if r.class_match else "no",
            f"{r.sim_seconds / max(r.predict_seconds, 1e-9):,.0f}x"])
    text = render_table(
        ["Workload", "Tiles", "Scale", "Simulated", "Predicted", "Error",
         "Predicted class", "Simulated class", "Match", "Speedup"],
        rows,
        title=f"Static prediction vs event engine — "
              f"{len(report.records)} points, "
              f"spearman={report.spearman:.4f}, "
              f"median |err|={report.median_abs_rel_error:.1%}, "
              f"class match={report.class_match_rate:.0%}, "
              f"aggregate speedup={report.aggregate_speedup:,.0f}x")
    save_result("predict_accuracy", text)

    total_sim = sum(r.sim_seconds for r in report.records)
    total_predict = sum(r.predict_seconds for r in report.records)
    summary_record = bench_record(
        "summary", config=None, cycles=None,
        points=len(report.records),
        spearman=round(report.spearman, 4),
        median_abs_rel_error=round(report.median_abs_rel_error, 4),
        class_match_rate=round(report.class_match_rate, 4),
        median_speedup=round(report.median_speedup, 1),
        aggregate_speedup=round(report.aggregate_speedup, 1),
        total_sim_seconds=round(total_sim, 3),
        total_predict_seconds=round(total_predict, 6),
        model_build_seconds={k: round(v, 6) for k, v in
                             sorted(report.build_seconds.items())})
    save_json("predict_accuracy", [summary_record] + [
        bench_record(
            r.workload,
            config={"ntiles": r.tiles, "scale": r.scale,
                    "engine": "event"},
            cycles=r.actual_cycles,
            predicted_cycles=r.predicted_cycles,
            rel_error=round(r.rel_error, 4),
            predicted_bottleneck=r.predicted_bottleneck,
            actual_bottleneck=r.actual_bottleneck,
            predicted_class=r.predicted_class,
            actual_class=r.actual_class,
            class_match=r.class_match,
            predict_seconds=round(r.predict_seconds, 6),
            sim_seconds=round(r.sim_seconds, 6))
        for r in report.records],
        sweep={"points": len(report.records), "jobs": 1,
               "wall_seconds": round(total_sim + total_predict, 3),
               "cache_hits": 0, "cache_misses": len(report.records),
               "errors": 0})

    assert len(report.records) >= MIN_POINTS
    assert report.spearman >= MIN_SPEARMAN, (
        f"predicted/simulated rank correlation {report.spearman:.4f} "
        f"below {MIN_SPEARMAN}")
    assert report.median_abs_rel_error <= MAX_MEDIAN_ERROR, (
        f"median relative cycle error {report.median_abs_rel_error:.1%} "
        f"above {MAX_MEDIAN_ERROR:.0%}")
    assert report.aggregate_speedup >= MIN_SPEEDUP, (
        f"aggregate predictor speedup {report.aggregate_speedup:,.0f}x "
        f"below {MIN_SPEEDUP:,.0f}x")
