"""Ablation: task-queue scheduling and sizing design choices.

The queue dispatch policy (DESIGN.md: LIFO for recursion, mirroring a
work-first Cilk scheduler) and the Ntasks depth bound the live spawn
tree; these runs quantify both effects on the recursive benchmarks.
"""

import pytest

from repro.accel import AcceleratorConfig, TaskUnitParams, build_accelerator
from repro.errors import DeadlockError
from repro.reports import bench_record, render_table
from repro.workloads import REGISTRY, fib_reference


def run_fib(n, queue_depth, policy, ntiles=4):
    workload = REGISTRY.get("fibonacci")
    config = AcceleratorConfig(unit_params={
        "fib": TaskUnitParams(ntiles=ntiles, queue_depth=queue_depth,
                              policy=policy)})
    accel = workload.build(config)
    result = accel.run("fib", [n])
    assert result.retval == fib_reference(n)
    peak = accel.units[0].queue.stats()["peak_occupancy"]
    return result.cycles, peak


def test_ablation_queue_policy(benchmark, save_result, save_json):
    """LIFO (depth-first) keeps the live spawn tree far smaller than
    FIFO (breadth-first) at equal correctness."""

    def run():
        out = {}
        for policy in ("lifo", "fifo"):
            out[policy] = run_fib(12, queue_depth=1024, policy=policy)
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[p, c, peak] for p, (c, peak) in data.items()]
    text = render_table(["Policy", "cycles", "peak queue occupancy"], rows,
                        title="Ablation — dispatch policy on fib(12)")
    save_result("ablation_policy", text)
    save_json("ablation_policy", [
        bench_record("fibonacci",
                     config={"ntiles": 4, "queue_depth": 1024,
                             "policy": policy, "n": 12},
                     cycles=cycles, peak_queue_occupancy=peak)
        for policy, (cycles, peak) in data.items()])

    # with 4 tiles x 8 in-flight there are ~32 concurrent walkers, which
    # dilutes pure depth-first order — the live tree still shrinks ~25%
    lifo_peak = data["lifo"][1]
    fifo_peak = data["fifo"][1]
    assert lifo_peak < fifo_peak * 0.85, (
        f"LIFO peak {lifo_peak} not smaller than FIFO {fifo_peak}")


def test_ablation_queue_depth_safety(benchmark, save_result, save_json):
    """An undersized queue is a circular wait: the engine reports the
    livelock instead of hanging, and a tree-sized queue always works."""

    def run():
        outcomes = {}
        for depth in (8, 64, 512):
            try:
                cycles, peak = run_fib(12, queue_depth=depth, policy="lifo")
                outcomes[depth] = ("ok", cycles, peak)
            except DeadlockError:
                outcomes[depth] = ("livelock", None, None)
        return outcomes

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[d, *v] for d, v in data.items()]
    text = render_table(["Depth", "outcome", "cycles", "peak"], rows,
                        title="Ablation — queue depth vs fib(12)'s "
                              "465-task spawn tree")
    save_result("ablation_queue_depth", text)
    save_json("ablation_queue_depth", [
        bench_record("fibonacci",
                     config={"ntiles": 4, "queue_depth": depth,
                             "policy": "lifo", "n": 12},
                     cycles=cycles, outcome=outcome,
                     peak_queue_occupancy=peak)
        for depth, (outcome, cycles, peak) in data.items()])

    assert data[8][0] == "livelock"
    assert data[512][0] == "ok"


def test_ablation_inflight_depth(benchmark, save_result, save_json):
    """Per-tile pipelining (Fig 7): deeper in-flight windows raise
    throughput per tile until another resource saturates."""

    def run():
        workload = REGISTRY.get("stencil")
        out = {}
        for inflight in (1, 2, 8):
            design_units = {}
            from repro.accel.generator import generate

            for ct in generate(workload.fresh_module()).compiled:
                design_units[ct.name] = TaskUnitParams(
                    ntiles=2, max_inflight_per_tile=inflight)
            config = AcceleratorConfig(unit_params=design_units)
            result = workload.run(config=config, scale=2)
            assert result.correct
            out[inflight] = result.cycles
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[i, c] for i, c in data.items()]
    text = render_table(["In-flight/tile", "stencil cycles"], rows,
                        title="Ablation — per-tile task pipelining depth")
    save_result("ablation_inflight", text)
    save_json("ablation_inflight", [
        bench_record("stencil",
                     config={"ntiles": 2, "max_inflight_per_tile": inflight,
                             "scale": 2},
                     cycles=cycles)
        for inflight, cycles in data.items()])
    assert data[8] < data[1] * 0.7
