"""SAXPY with a dynamic-exit spawner loop (Table II: "Dynamic exit loops").

The trip count is read from shared memory at run time and each iteration
is spawned from a while loop — the pattern static HLS cannot unroll
(paper §II-B)."""

from __future__ import annotations

import random

from repro.ir.opsem import eval_binop, to_f32
from repro.ir.types import F32, I32
from repro.workloads.base import PreparedRun, Workload


class Saxpy(Workload):
    name = "saxpy"
    entry = "saxpy"
    challenge = "Dynamic exit loops"
    memory_pattern = "Regular"
    paper_tiles = 5  # Table IV

    source = """
    // y = a*x + y; the element count arrives through shared memory and
    // the spawner loop exits dynamically.
    func saxpy(a: f32, x: f32*, y: f32*, len_ptr: i32*) {
      var n: i32 = len_ptr[0];
      var i: i32 = 0;
      while (i < n) {
        spawn {
          y[i] = a * x[i] + y[i];
        }
        i = i + 1;
      }
      sync;
    }
    """

    def default_n(self, scale: int) -> int:
        return 64 * scale

    @staticmethod
    def golden(a, xs, ys):
        """Bit-exact f32 reference: inputs quantise to single precision in
        memory before each op rounds."""
        out = []
        for x, y in zip(xs, ys):
            ax = eval_binop("fmul", F32, to_f32(a), to_f32(x))
            out.append(eval_binop("fadd", F32, ax, to_f32(y)))
        return out

    def prepare(self, memory, scale: int = 1) -> PreparedRun:
        n = self.default_n(scale)
        rng = random.Random(3)
        xs = [round(rng.uniform(-10, 10), 3) for _ in range(n)]
        ys = [round(rng.uniform(-10, 10), 3) for _ in range(n)]
        a = 2.5
        expected = self.golden(a, xs, ys)
        base_x = memory.alloc_array(F32, xs)
        base_y = memory.alloc_array(F32, ys)
        base_len = memory.alloc_array(I32, [n])

        def check(mem, _retval):
            return mem.read_array(base_y, F32, n) == expected

        return PreparedRun(self.entry, [a, base_x, base_y, base_len],
                           check, work_items=n)
