"""Ablation: inlining serial callees vs spawning through task units.

Paper §VI ("Task controllers"): the controllers and queuing logic add
latency to the critical path, and statically absorbing suitable work
would eliminate them. This quantifies it on mergesort, whose serial
`merge` runs once per recursion node through a call round trip.
"""

import sweeplib

from repro.accel import build_accelerator
from repro.exp import register_evaluator
from repro.ir.types import I32
from repro.passes import inline_calls, prune_unreachable_functions
from repro.reports import render_table, sweep_record
from repro.workloads import Mergesort


def _run_mergesort(module, n):
    import random

    accel = build_accelerator(module, Mergesort().default_config())
    rng = random.Random(17)
    data = [rng.randrange(-1000, 1000) for _ in range(n)]
    base = accel.memory.alloc_array(I32, data)
    result = accel.run("mergesort", [base, 0, n - 1])
    assert accel.memory.read_array(base, I32, n) == sorted(data)
    return result.cycles, len(accel.units)


def _eval_inlining(spec):
    workload = Mergesort()
    module = workload.fresh_module()
    if spec["variant"] == "inline merge":
        inline_calls(module, max_insts=200)
        prune_unreachable_functions(module, ["mergesort"])
    cycles, units = _run_mergesort(module, spec["n"])
    return {"cycles": cycles, "task_units": units}


register_evaluator("ablation_inlining", _eval_inlining,
                   program_text=sweeplib.file_program_text(__file__))


def test_ablation_inline_serial_callees(benchmark, save_result, save_json,
                                        sweep_runner):
    points = [{"evaluator": "ablation_inlining", "variant": variant,
               "n": 64}
              for variant in ("spawn merge unit", "inline merge")]

    def run():
        return sweeplib.run_points(sweep_runner, points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    data = {record["spec"]["variant"]:
            (record["value"]["cycles"], record["value"]["task_units"])
            for record in result.records}

    rows = [[name, cycles, units] for name, (cycles, units) in data.items()]
    text = render_table(["Configuration", "cycles", "task units"], rows,
                        title="Ablation — inlining the serial merge "
                              "(paper §VI: eliminate task controllers)")
    save_result("ablation_inlining", text)
    save_json("ablation_inlining", [
        sweep_record(record, "mergesort",
                     config={"variant": record["spec"]["variant"], "n": 64},
                     task_units=record["value"]["task_units"])
        for record in result.records], sweep=result.summary)

    base_cycles, base_units = data["spawn merge unit"]
    inl_cycles, inl_units = data["inline merge"]
    assert inl_units == base_units - 1          # controller eliminated
    assert inl_cycles < base_cycles             # round trips removed
