"""Textual IR printer, LLVM-flavoured, used for debugging and golden tests."""

from __future__ import annotations

from typing import Dict

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    GEP,
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    Detach,
    FCmp,
    ICmp,
    Instruction,
    Load,
    Reattach,
    Ret,
    Select,
    Store,
    Sync,
)
from repro.ir.module import Module
from repro.ir.values import Value


class Printer:
    """Prints modules/functions with stable, sequential value numbering.

    Names are uniquified (two distinct values never print the same), so
    the output round-trips through :mod:`repro.ir.textparser`.
    """

    def __init__(self):
        self._names: Dict[Value, str] = {}
        self._used: set = set()

    def _ref(self, value) -> str:
        if value is None:
            return "<none>"
        if isinstance(value, Instruction):
            if value not in self._names:
                base = value.name or "v"
                candidate = base
                counter = 1
                while candidate in self._used:
                    candidate = f"{base}.{counter}"
                    counter += 1
                self._used.add(candidate)
                self._names[value] = f"%{candidate}"
            return self._names[value]
        return value.short()

    def instruction(self, inst: Instruction) -> str:
        r = self._ref
        if isinstance(inst, BinaryOp):
            return f"{r(inst)} = {inst.op} {inst.type!r} {r(inst.lhs)}, {r(inst.rhs)}"
        if isinstance(inst, ICmp):
            return f"{r(inst)} = icmp {inst.predicate} {r(inst.lhs)}, {r(inst.rhs)}"
        if isinstance(inst, FCmp):
            return (f"{r(inst)} = fcmp {inst.predicate} "
                    f"{r(inst.operands[0])}, {r(inst.operands[1])}")
        if isinstance(inst, Select):
            c, t, f = inst.operands
            return f"{r(inst)} = select {r(c)}, {r(t)}, {r(f)}"
        if isinstance(inst, Cast):
            return f"{r(inst)} = {inst.kind} {r(inst.operands[0])} to {inst.type!r}"
        if isinstance(inst, Alloca):
            marker = "alloca.frame" if inst.in_frame else "alloca"
            return f"{r(inst)} = {marker} {inst.allocated_type!r}"
        if isinstance(inst, GEP):
            pairs = ", ".join(
                f"{r(i)}*{s}" for i, s in zip(inst.indices, inst.strides))
            return f"{r(inst)} = gep {r(inst.base)} [{pairs}]"
        if isinstance(inst, Load):
            return f"{r(inst)} = load {inst.type!r} {r(inst.pointer)}"
        if isinstance(inst, Store):
            return f"store {r(inst.value)}, {r(inst.pointer)}"
        if isinstance(inst, Call):
            args = ", ".join(r(a) for a in inst.args)
            if inst.type.is_void():
                return f"call @{inst.callee.name}({args})"
            return f"{r(inst)} = call @{inst.callee.name}({args})"
        if isinstance(inst, Br):
            return f"br {inst.dest.name}"
        if isinstance(inst, CondBr):
            return f"condbr {r(inst.cond)}, {inst.if_true.name}, {inst.if_false.name}"
        if isinstance(inst, Ret):
            return f"ret {r(inst.value)}" if inst.value is not None else "ret"
        if isinstance(inst, Detach):
            return f"detach {inst.detached.name}, continue {inst.continuation.name}"
        if isinstance(inst, Reattach):
            return f"reattach {inst.continuation.name}"
        if isinstance(inst, Sync):
            return f"sync {inst.continuation.name}"
        return f"<{inst.opcode}>"

    def block(self, block: BasicBlock) -> str:
        lines = [f"{block.name}:"]
        lines.extend(f"  {self.instruction(i)}" for i in block.instructions)
        return "\n".join(lines)

    def function(self, function: Function) -> str:
        args = ", ".join(f"{a.name}: {a.type!r}" for a in function.arguments)
        lines = [f"func @{function.name}({args}) -> {function.return_type!r} {{"]
        lines.extend(self.block(b) for b in function.blocks)
        lines.append("}")
        return "\n".join(lines)

    def module(self, module: Module) -> str:
        parts = [f"; module {module.name}"]
        parts.extend(
            f"@{g.name}: {g.type!r} [{g.size_bytes} bytes]" for g in module.globals)
        parts.extend(self.function(f) for f in module.functions)
        return "\n\n".join(parts)


def print_module(module: Module) -> str:
    return Printer().module(module)


def print_function(function: Function) -> str:
    return Printer().function(function)
