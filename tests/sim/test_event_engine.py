"""Tests for the event-driven simulation kernel.

The contract under test: the event engine (wakeup scheduling plus
quiescent fast-forward) produces bit-identical cycle counts, stats and
failure behaviour to the dense tick-everything oracle, while executing
strictly fewer component ticks on sparse activity.
"""

import pytest

from repro.errors import ConfigError, DeadlockError, SimulationError
from repro.obs import Observer
from repro.sim import ENGINES, NEVER, Component, Simulator
from repro.sim.engine import DEADLOCK_WINDOW, STALL_WINDOW


class Producer(Component):
    """Dense-style producer: no sensitivity declared (engine fallback)."""

    def __init__(self, name, out, count):
        super().__init__(name)
        self.out = out
        self.remaining = count
        self.next_value = 0

    def tick(self, cycle):
        if self.remaining > 0 and self.out.can_push():
            self.out.push(self.next_value)
            self.next_value += 1
            self.remaining -= 1

    def is_busy(self):
        return self.remaining > 0


class EventConsumer(Component):
    """Event-aware consumer: woken only by traffic on its input."""

    def __init__(self, name, inp):
        super().__init__(name)
        self.inp = inp
        self.received = []
        self.ticks = 0

    def tick(self, cycle):
        self.ticks += 1
        if self.inp.can_pop():
            self.received.append(self.inp.pop())

    def sensitivity(self):
        return (self.inp,)

    def next_wake(self, cycle):
        return NEVER


class Timer(Component):
    """Fires one message after a long pure-timer delay (no channel input),
    exercising the quiescent fast-forward path."""

    def __init__(self, name, out, fire_at):
        super().__init__(name)
        self.out = out
        self.fire_at = fire_at
        self.fired = False
        self.ticks = 0

    def tick(self, cycle):
        self.ticks += 1
        if not self.fired and cycle >= self.fire_at and self.out.can_push():
            self.out.push("late")
            self.fired = True

    def is_busy(self):
        return not self.fired

    def sensitivity(self):
        return (self.out,)

    def next_wake(self, cycle):
        if self.fired:
            return NEVER
        return max(cycle + 1, self.fire_at)


def _build(engine, count=50):
    sim = Simulator(engine=engine)
    ch = sim.add_channel("pc", capacity=2)
    sim.add_component(Producer("p", ch, count=count))
    consumer = sim.add_component(EventConsumer("c", ch))
    return sim, consumer


class TestEngineSelection:
    def test_engines_tuple(self):
        assert ENGINES == ("event", "dense", "compiled")

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError, match="unknown engine"):
            Simulator(engine="magic")

    def test_config_engine_validated(self):
        from repro.accel.config import AcceleratorConfig

        with pytest.raises(ConfigError, match="unknown engine"):
            AcceleratorConfig(engine="magic")

    def test_default_engine_is_event(self):
        assert Simulator().engine == "event"


class TestBitIdentical:
    def test_producer_consumer_same_cycles(self):
        dense, dc = _build("dense")
        event, ec = _build("event")
        cd = dense.run(lambda: len(dc.received) == 50, max_cycles=1000)
        ce = event.run(lambda: len(ec.received) == 50, max_cycles=1000)
        assert cd == ce
        assert dc.received == ec.received

    def test_stats_identical_modulo_engine_key(self):
        dense, dc = _build("dense")
        event, ec = _build("event")
        dense.run(lambda: len(dc.received) == 50, max_cycles=1000)
        event.run(lambda: len(ec.received) == 50, max_cycles=1000)
        sd, se = dense.stats(), event.stats()
        assert sd.pop("engine")["name"] == "dense"
        assert se.pop("engine")["name"] == "event"
        assert sd == se

    def test_timer_fast_forward_matches_dense(self):
        for delay in (10, 500, DEADLOCK_WINDOW + 123):
            results = {}
            for engine in ENGINES:
                sim = Simulator(engine=engine)
                ch = sim.add_channel("t", capacity=1)
                timer = sim.add_component(Timer("timer", ch, fire_at=delay))
                consumer = sim.add_component(EventConsumer("c", ch))
                cycles = sim.run(lambda c=consumer: c.received == ["late"],
                                 max_cycles=delay * 3 + 100)
                results[engine] = (cycles, timer.ticks if engine == "event"
                                   else None)
            assert results["dense"][0] == results["event"][0]

    def test_fast_forward_skips_quiet_cycles(self):
        sim = Simulator(engine="event")
        ch = sim.add_channel("t", capacity=1)
        sim.add_component(Timer("timer", ch, fire_at=1000))
        consumer = sim.add_component(EventConsumer("c", ch))
        sim.run(lambda: consumer.received == ["late"], max_cycles=5000)
        engine = sim.engine_stats()
        assert engine["fast_forwarded_cycles"] > 900
        assert engine["ticks_executed"] < 100

    def test_event_engine_executes_fewer_component_ticks(self):
        dense, dc = _build("dense", count=10)
        event, ec = _build("event", count=10)
        dense.run(lambda: len(dc.received) == 10, max_cycles=1000)
        event.run(lambda: len(ec.received) == 10, max_cycles=1000)
        # the producer is dense-fallback (ticks every cycle) but the
        # event-aware consumer only wakes on channel movement
        assert ec.ticks <= dc.ticks

    def test_dense_fallback_for_undeclared_sensitivity(self):
        """Components without sensitivity() run every cycle under both
        engines — the conservative default keeps third-party components
        correct."""

        class Spinner(Component):
            def __init__(self, name):
                super().__init__(name)
                self.ticks = 0

            def tick(self, cycle):
                self.ticks += 1

        sim = Simulator(engine="event")
        spinner = sim.add_component(Spinner("s"))
        with pytest.raises(DeadlockError):
            sim.run(lambda: False, max_cycles=DEADLOCK_WINDOW * 3)
        assert spinner.ticks == sim.cycle


class TestFailureParity:
    def test_deadlock_fires_at_same_cycle(self):
        cycles = {}
        for engine in ENGINES:
            sim = Simulator(engine=engine)
            ch = sim.add_channel("pc", capacity=1)
            sim.add_component(EventConsumer("c", ch))  # starves forever
            with pytest.raises(DeadlockError) as excinfo:
                sim.run(lambda: False, max_cycles=DEADLOCK_WINDOW * 3)
            cycles[engine] = excinfo.value.cycle
        assert cycles["dense"] == cycles["event"]

    def test_livelock_fires_at_same_cycle(self):
        class BusyRetrier(Component):
            def __init__(self, name, out):
                super().__init__(name)
                self.out = out

            def tick(self, cycle):
                if self.out.can_push():
                    self.out.push("x")

            def is_busy(self):
                return True

        outcomes = {}
        for engine in ENGINES:
            sim = Simulator(engine=engine)
            ch = sim.add_channel("r.out", capacity=1)
            sim.add_component(BusyRetrier("r", ch))
            with pytest.raises(DeadlockError, match="livelock") as excinfo:
                sim.run(lambda: False, max_cycles=STALL_WINDOW * 2)
            outcomes[engine] = (excinfo.value.cycle,
                                [c["name"] for c in
                                 excinfo.value.postmortem["stalled"]])
        assert outcomes["dense"] == outcomes["event"]

    def test_timeout_fires_at_same_cycle(self):
        for engine in ENGINES:
            sim = Simulator(engine=engine)
            ch = sim.add_channel("t", capacity=1)
            sim.add_component(Timer("timer", ch, fire_at=10_000))
            with pytest.raises(SimulationError, match="exceeded"):
                sim.run(lambda: False, max_cycles=500)
            assert sim.cycle == 500, engine


class TestEngineStats:
    def test_engine_stats_keys(self):
        sim, consumer = _build("event")
        sim.run(lambda: len(consumer.received) == 50, max_cycles=1000)
        engine = sim.engine_stats()
        assert engine["name"] == "event"
        assert engine["host_seconds"] >= 0
        assert engine["cycles_simulated"] == sim.cycle
        assert engine["sim_cycles_per_host_second"] is None \
            or engine["sim_cycles_per_host_second"] > 0

    def test_stats_reports_every_component(self):
        class Mute(Component):
            def tick(self, cycle):
                pass

        sim = Simulator(engine="event")
        sim.add_component(Mute("quiet"))
        with pytest.raises(DeadlockError):
            sim.run(lambda: False, max_cycles=DEADLOCK_WINDOW * 2)
        stats = sim.stats()
        assert stats["cycles"] == sim.cycle
        assert "quiet" in stats  # empty stats dict still reported
        assert stats["quiet"] == {}


class TestObserverSynthesis:
    def _run_observed(self, engine, fire_at=800):
        sim = Simulator(engine=engine)
        observer = Observer()
        sim.attach_observer(observer)
        ch = sim.add_channel("t", capacity=1)
        sim.add_component(Timer("timer", ch, fire_at=fire_at))
        consumer = sim.add_component(EventConsumer("c", ch))
        cycles = sim.run(lambda: consumer.received == ["late"],
                         max_cycles=5000)
        return cycles, observer

    def test_quiet_span_synthesis_matches_dense(self):
        cd, od = self._run_observed("dense")
        ce, oe = self._run_observed("event")
        assert cd == ce
        assert od.as_dict() == oe.as_dict()
        for name, ledger in od.ledgers.items():
            assert ledger.timeline == oe.ledgers[name].timeline, name
        for name, probe in od.probes.items():
            assert probe.occupancy_timeline == \
                oe.probes[name].occupancy_timeline, name

    def test_observer_sees_every_cycle(self):
        cycles, observer = self._run_observed("event")
        assert observer.cycles_observed == cycles
        assert observer.first_cycle == 0
        assert observer.last_cycle == cycles - 1

    def test_third_party_observer_gets_per_cycle_replay(self):
        """An observer without on_quiet_span still sees one on_cycle call
        per simulated cycle, in order."""

        class MinimalObserver:
            def __init__(self):
                self.cycles = []

            def on_cycle(self, sim, cycle):
                self.cycles.append(cycle)

        sim = Simulator(engine="event")
        observer = MinimalObserver()
        sim.attach_observer(observer)
        ch = sim.add_channel("t", capacity=1)
        sim.add_component(Timer("timer", ch, fire_at=300))
        consumer = sim.add_component(EventConsumer("c", ch))
        cycles = sim.run(lambda: consumer.received == ["late"],
                         max_cycles=2000)
        assert observer.cycles == list(range(cycles))
