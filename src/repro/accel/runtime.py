"""Host runtime: the heterogeneous-SoC execution model (paper §III).

The boards are ARM + FPGA SoCs: TAPAS offloads the parallel functions to
the fabric and "generates a binary for the program regions/functions
that cannot be offloaded (e.g., due to system calls); they run on the
ARM. All communication between the ARM and the accelerator occurs
through shared memory."

:class:`HostProgram` models exactly that: one shared :class:`MainMemory`
image, accelerator offloads timed by the cycle simulator, host calls
timed by an ARM cost model, with an elapsed-time ledger across both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from repro.accel.accelerator import Accelerator
from repro.accel.config import AcceleratorConfig
from repro.accel.generator import generate
from repro.baselines.cpu import CPUCostModel, MulticoreCPU
from repro.errors import ConfigError
from repro.ir.module import Module
from repro.ir.types import Type

#: Cortex-A9-class host cores (DE1-SoC): ~800 MHz, dual core, in-order —
#: the paper measures this host at ~13x slower than the i7
ARM_COST_MODEL = CPUCostModel(
    frequency_ghz=0.8,
    cores=2,
    op_cycles={
        "alu": 1.0, "gep": 0.8, "mul": 2.0, "div": 16.0,
        "falu": 3.0, "fmul": 3.5, "fdiv": 18.0,
        "load": 3.0, "store": 2.0,
        "regread": 0.5, "regwrite": 0.5, "nop": 0.0,
        "control": 1.5, "call": 10.0, "spawn": 0.0, "sync": 0.0,
    },
    spawn_overhead_cycles=180.0,
    sched_overhead_cycles=350.0,
)


@dataclass
class HostCall:
    """One completed call, host- or accelerator-side."""

    function: str
    where: str          # "fpga" or "arm"
    retval: Any
    seconds: float
    cycles: Optional[int] = None


class HostProgram:
    """An application running on the ARM+FPGA SoC.

    ``offload`` names the functions compiled into the accelerator's entry
    points; every other function executes on the ARM model. Both sides
    read and write the same memory image, so mixed flows (host init →
    FPGA compute → host check) behave like the paper's deployments.
    """

    def __init__(self, module: Module, offload: Iterable[str],
                 config: Optional[AcceleratorConfig] = None,
                 mhz: Optional[float] = None):
        self.module = module
        self.offload = set(offload)
        for name in self.offload:
            if module.function(name) is None:
                raise ConfigError(f"offload target '{name}' not in module")
        self.accelerator = Accelerator(generate(module),
                                       config or AcceleratorConfig())
        self.memory = self.accelerator.memory
        self._arm = MulticoreCPU(module, self.memory, ARM_COST_MODEL)
        if mhz is None:
            from repro.reports.frequency import estimate_mhz
            from repro.reports.resources import estimate_resources

            board = (config or AcceleratorConfig()).board
            mhz = estimate_mhz(board,
                               estimate_resources(self.accelerator).alms)
        self.mhz = mhz
        self.history: List[HostCall] = []

    # -- memory convenience ---------------------------------------------------

    def alloc_array(self, type_: Type, values) -> int:
        return self.memory.alloc_array(type_, values)

    def read_array(self, addr: int, type_: Type, count: int):
        return self.memory.read_array(addr, type_, count)

    # -- execution ---------------------------------------------------------

    def call(self, name: str, args) -> HostCall:
        """Run ``name``: on the fabric if offloaded, else on the ARM."""
        if name in self.offload:
            result = self.accelerator.run(name, args)
            call = HostCall(function=name, where="fpga",
                            retval=result.retval,
                            seconds=result.cycles / (self.mhz * 1e6),
                            cycles=result.cycles)
        else:
            result = self._arm.run(name, args)
            call = HostCall(function=name, where="arm",
                            retval=result.retval,
                            seconds=result.time_seconds(ARM_COST_MODEL))
        self.history.append(call)
        return call

    # -- accounting ---------------------------------------------------------

    def elapsed_seconds(self) -> float:
        return sum(c.seconds for c in self.history)

    def time_breakdown(self) -> Dict[str, float]:
        out = {"fpga": 0.0, "arm": 0.0}
        for call in self.history:
            out[call.where] += call.seconds
        return out

    def __repr__(self):
        return (f"<HostProgram {self.module.name}: "
                f"{sorted(self.offload)} on fabric, {self.mhz:.0f} MHz>")
