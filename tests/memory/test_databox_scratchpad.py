"""Tests for the data box, arbiters/demux and the scratchpad."""

import pytest

from repro.memory import (
    DataBox,
    Demux,
    MainMemory,
    MemRequest,
    MemResponse,
    RoundRobinArbiter,
    Scratchpad,
    tree_levels,
)
from repro.memory.databox import MemTag
from repro.sim import Simulator


class TestTreeLevels:
    def test_depth_grows_with_fan_in(self):
        assert tree_levels(2) == 1
        assert tree_levels(4) == 1
        assert tree_levels(5) == 2
        assert tree_levels(16) == 2
        assert tree_levels(17) == 3


class TestArbiter:
    def test_round_robin_fairness(self):
        sim = Simulator()
        inputs = [sim.add_channel(f"in{i}", 4) for i in range(3)]
        out = sim.add_channel("out", 8)
        sim.add_component(RoundRobinArbiter("arb", inputs, out))
        for i, ch in enumerate(inputs):
            ch.push(("a", i))
            ch.commit()
            ch.push(("b", i))
        got = []
        for _ in range(40):
            if out.can_pop():
                got.append(out.pop())
            sim.tick()
        sources = [src for _, src in got[:3]]
        assert sorted(sources) == [0, 1, 2]  # one grant each before repeats

    def test_arbiter_requires_inputs(self):
        from repro.errors import SimulationError

        sim = Simulator()
        out = sim.add_channel("out", 2)
        with pytest.raises(SimulationError):
            RoundRobinArbiter("arb", [], out)


class TestDemux:
    def test_routes_by_port(self):
        sim = Simulator()
        inp = sim.add_channel("in", 4)
        outs = [sim.add_channel(f"o{i}", 4) for i in range(3)]
        sim.add_component(Demux("d", inp, outs))
        for port in (2, 0, 1):
            inp.push(MemResponse(tag=port, port=port))
            inp.commit()
            for _ in range(6):
                sim.tick()
        for i, out in enumerate(outs):
            assert out.can_pop()
            assert out.pop().tag == i

    def test_bad_port_raises(self):
        from repro.errors import SimulationError

        sim = Simulator()
        inp = sim.add_channel("in", 4)
        outs = [sim.add_channel("o0", 4)]
        sim.add_component(Demux("d", inp, outs))
        inp.push(MemResponse(tag=0, port=7))
        inp.commit()
        with pytest.raises(SimulationError, match="bad port"):
            for _ in range(10):
                sim.tick()


class TestDataBox:
    def make_box(self, entries=2, ports=2):
        sim = Simulator()
        to_cache = sim.add_channel("to", 4)
        from_cache = sim.add_channel("from", 4)
        box = DataBox(sim, "box", unit_index=0, num_ports=ports,
                      to_cache=to_cache, from_cache=from_cache,
                      entries=entries)
        return sim, box, to_cache, from_cache

    def request(self, tile, node=0):
        return MemRequest(tag=MemTag(0, tile, 0, node), op="load",
                          addr=64, size=4)

    def test_merges_tiles_and_routes_responses_back(self):
        sim, box, to_cache, from_cache = self.make_box()
        box.tile_request[0].push(self.request(0))
        box.tile_request[1].push(self.request(1))
        for ch in box.tile_request:
            ch.commit()
        seen = []
        for _ in range(10):
            sim.tick()
            if to_cache.can_pop():
                req = to_cache.pop()
                seen.append(req.tag.tile)
                from_cache.push(MemResponse(tag=req.tag, data=1))
        for _ in range(10):
            sim.tick()
        assert sorted(seen) == [0, 1]
        assert box.tile_response[0].can_pop()
        assert box.tile_response[1].can_pop()
        assert box.tile_response[0].pop().tag.tile == 0

    def test_allocator_table_bounds_outstanding(self):
        sim, box, to_cache, from_cache = self.make_box(entries=1)
        box.tile_request[0].push(self.request(0, node=0))
        box.tile_request[0].commit()
        box.tile_request[1].push(self.request(1, node=1))
        box.tile_request[1].commit()
        forwarded = []
        for _ in range(20):
            sim.tick()
            if to_cache.can_pop():
                forwarded.append(to_cache.pop())
        assert len(forwarded) == 1  # second op held: one staging entry
        # release the entry and the second op proceeds
        from_cache.push(MemResponse(tag=forwarded[0].tag, data=0))
        from_cache.commit()
        for _ in range(20):
            sim.tick()
            if to_cache.can_pop():
                forwarded.append(to_cache.pop())
        assert len(forwarded) == 2
        assert box.stats()["peak_outstanding"] == 1


class TestScratchpad:
    def test_load_store_roundtrip_with_fixed_latency(self):
        sim = Simulator()
        mem = MainMemory(1 << 12)
        req = sim.add_channel("rq", 4)
        resp = sim.add_channel("rs", 4)
        sim.add_component(Scratchpad("sp", mem, req, resp, latency=2))
        addr = mem.alloc(8)
        req.push(MemRequest(tag="w", op="store", addr=addr, size=4, data=77))
        req.commit()
        req.push(MemRequest(tag="r", op="load", addr=addr, size=4))
        got = []
        issue_cycle = sim.cycle
        for _ in range(20):
            sim.tick()
            if resp.can_pop():
                got.append((sim.cycle, resp.pop()))
        assert [m.tag for _, m in got] == ["w", "r"]
        assert got[1][1].data == 77
        assert got[0][0] - issue_cycle >= 2  # latency respected
