"""Channel-graph construction and structural netlist verification, on
synthetic simulators and on real elaborated accelerators."""

from repro.accel import AcceleratorConfig, build_accelerator
from repro.analysis.netlist import (
    build_channel_graph,
    cycle_buffering,
    find_component_cycles,
    reachable_components,
    verify_netlist,
)
from repro.frontend import compile_source
from repro.sim import Component, Simulator


class Stage(Component):
    """Test double declaring its wiring through ports()."""

    def __init__(self, name, ins=(), outs=()):
        super().__init__(name)
        self.ins, self.outs = tuple(ins), tuple(outs)

    def ports(self):
        return (self.ins, self.outs)


class Opaque(Component):
    """Keeps the base ports() -> None: undeclared wiring."""


def _pipeline():
    """host -> [entry] -> a -> [mid] -> b -> [tail]."""
    sim = Simulator("pipe")
    entry = sim.add_channel("entry")
    a = sim.add_channel("a")
    b = sim.add_channel("b")
    sim.add_component(Stage("front", ins=[entry], outs=[a]))
    sim.add_component(Stage("mid", ins=[a], outs=[b]))
    sim.add_component(Stage("tail", ins=[b], outs=[]))
    return sim, entry


def test_clean_pipeline_verifies():
    sim, entry = _pipeline()
    findings = verify_netlist(sim, external=[entry], sources=[entry])
    assert findings == []


def test_dangling_channel_reported():
    sim, entry = _pipeline()
    sim.add_channel("orphan")  # nobody produces or consumes it
    findings = verify_netlist(sim, external=[entry], sources=[entry])
    assert len(findings) == 1
    diag = findings[0]
    assert diag.code == "TAP-NET-006"
    assert diag.data["channel"] == "orphan"
    assert set(diag.data["missing"]) == {"no producer", "no consumer"}


def test_half_dangling_channel_reported():
    sim, entry = _pipeline()
    stray = sim.add_channel("stray")
    sim.add_component(Stage("writer", ins=[], outs=[stray]))
    findings = verify_netlist(sim, external=[entry], sources=[entry])
    codes = {(d.code, d.data.get("channel")) for d in findings
             if "channel" in d.data}
    assert ("TAP-NET-006", "stray") in codes
    stray_diag = next(d for d in findings if d.data.get("channel") == "stray")
    assert stray_diag.data["missing"] == ["no consumer"]


def test_unreachable_component_reported():
    sim, entry = _pipeline()
    loop = sim.add_channel("loop")
    sim.add_component(Stage("island", ins=[loop], outs=[loop]))
    findings = verify_netlist(sim, external=[entry], sources=[entry])
    unreachable = [d for d in findings if "component" in d.data]
    assert [d.data["component"] for d in unreachable] == ["island"]


def test_opaque_component_never_reported():
    sim, entry = _pipeline()
    sim.add_component(Opaque("mystery"))
    findings = verify_netlist(sim, external=[entry], sources=[entry])
    assert findings == []


def test_external_channel_not_dangling():
    """The host-spawn channel has no in-sim producer; marking it external
    suppresses the dangling report."""
    sim, entry = _pipeline()
    assert verify_netlist(sim, external=[entry], sources=[entry]) == []
    with_report = verify_netlist(sim, external=[], sources=[entry])
    assert any(d.data.get("channel") == "entry" for d in with_report)


def test_cycle_detection_and_buffering():
    sim = Simulator("ring")
    entry = sim.add_channel("entry")
    fwd = sim.add_channel("fwd", capacity=4)
    back = sim.add_channel("back", capacity=3)
    ping = Stage("ping", ins=[entry, back], outs=[fwd])
    pong = Stage("pong", ins=[fwd], outs=[back])
    ping.queue = type("Q", (), {"depth": 8})()
    sim.add_component(ping)
    sim.add_component(pong)
    graph = build_channel_graph(sim, external=[entry])
    cycles = find_component_cycles(graph)
    assert len(cycles) == 1
    assert sorted(c.name for c in cycles[0]) == ["ping", "pong"]
    # both ring channels plus ping's internal queue buffer the cycle
    assert cycle_buffering(graph, cycles[0]) == 4 + 3 + 8


def test_acyclic_graph_has_no_cycles():
    sim, entry = _pipeline()
    graph = build_channel_graph(sim, external=[entry])
    assert find_component_cycles(graph) == []


def test_reachability_follows_channel_direction():
    sim, entry = _pipeline()
    graph = build_channel_graph(sim, external=[entry])
    seen = reachable_components(graph, [entry])
    names = {c.name for c in sim.components if id(c) in seen}
    assert names == {"front", "mid", "tail"}


SAXPY = """
func saxpy(a: i32, x: i32*, y: i32*, n: i32) {
  cilk_for (var i: i32 = 0; i < n; i = i + 1) {
    y[i] = a * x[i] + y[i];
  }
}
"""


def test_real_accelerator_netlist_is_clean():
    """Every channel the elaborator wires must have both endpoints, and
    every declared component must be reachable from the host spawn."""
    module = compile_source(SAXPY, "saxpy")
    accel = build_accelerator(module, AcceleratorConfig())
    host = accel.network.host_spawn
    assert verify_netlist(accel.sim, external=[host], sources=[host]) == []


def test_real_accelerator_task_network_is_cyclic():
    """Task units and the spawn network form request/response rings by
    construction — the cycle finder must see at least one SCC, and the
    lint layer's buffering measure must be positive."""
    module = compile_source(SAXPY, "saxpy")
    accel = build_accelerator(module, AcceleratorConfig())
    graph = build_channel_graph(accel.sim,
                                external=[accel.network.host_spawn])
    cycles = find_component_cycles(graph)
    assert cycles
    assert all(cycle_buffering(graph, scc) > 0 for scc in cycles)
