"""The determinacy-race detector: MHP x memory-dependence.

For every spawn site the MHP analysis yields three kinds of parallel
overlap (child vs. parent continuation, child vs. sibling subtree,
instance vs. instance of the same site). The detector intersects the
memory *footprints* of the two sides — direct loads/stores plus callee
effect summaries — and reports every pair that may touch overlapping
bytes with at least one write:

* a ``must``-alias pair is a **definite** race (``TAP-RACE-001``, error);
* a ``may``-alias pair is a **possible** race (``TAP-RACE-002``,
  warning) — the affine model could not prove disjointness (e.g.
  ``C[i*N+j]`` with symbolic ``N``, or a widened recursive summary).

Provenance (function, source lines, task sids, the spawn site's line) is
threaded onto each diagnostic, and the offending IR instructions ride
along on ``Diagnostic.ops`` so the dynamic checker can cross-validate a
simulation run against the static verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Diagnostic,
    DiagnosticReport,
)
from repro.analysis.memdep import (
    MAY,
    MUST,
    ROOT_UNKNOWN,
    MemEffect,
    PointerResolver,
    compare_effects,
    compute_summaries,
    effects_of_blocks,
)
from repro.analysis.mhp import SpawnContext, region_blocks, spawn_contexts
from repro.ir.instructions import Detach
from repro.ir.module import Module
from repro.passes.taskgraph import TaskGraph

# Overlap kinds, in the order they are searched.
KIND_CONTINUATION = "child-vs-continuation"
KIND_SIBLING = "sibling-subtrees"
KIND_INSTANCES = "cross-instance"


@dataclass
class RaceFinding:
    """One conflicting parallel access pair, pre-diagnostic."""

    verdict: str              # MUST or MAY
    a: MemEffect              # the write (always a write)
    b: MemEffect              # the other access (read or write)
    kind: str
    function: str
    detach: Detach            # the spawn site creating the parallelism
    sibling: Optional[Detach] = None

    def pair_key(self) -> frozenset:
        """Identity of the conflicting access pair, order-insensitive."""
        return frozenset(
            (tuple(sorted(id(op) for op in self.a.ops)),
             tuple(sorted(id(op) for op in self.b.ops))))


def _check_pairs(side_a: List[MemEffect], side_b: List[MemEffect],
                 context_blocks, cross_instance_only: bool, kind: str,
                 ctx: SpawnContext, sibling: Optional[Detach],
                 findings: List[RaceFinding]):
    for ea in side_a:
        for eb in side_b:
            if not (ea.is_write or eb.is_write):
                continue
            if cross_instance_only and ea.ops == eb.ops and not ea.is_write:
                continue  # read vs itself across instances: not a conflict
            verdict = compare_effects(ea, eb, context_blocks,
                                      cross_instance_only)
            if verdict in (MUST, MAY):
                write, other = (ea, eb) if ea.is_write else (eb, ea)
                findings.append(RaceFinding(
                    verdict, write, other, kind, ctx.task.function.name,
                    ctx.detach, sibling))


def find_races(graph: TaskGraph) -> Tuple[List[RaceFinding], List[MemEffect]]:
    """All conflicting MHP access pairs of a task graph, plus the list of
    effects whose pointers could not be resolved (for TAP-MEM-001)."""
    module = graph.module
    summaries = compute_summaries(module)
    resolvers = {f: PointerResolver(f) for f in module.functions}
    findings: List[RaceFinding] = []
    unresolved: List[MemEffect] = []

    for ctx in spawn_contexts(graph):
        resolver = resolvers[ctx.task.function]
        spawned = effects_of_blocks(ctx.region, resolver, summaries)
        serial = effects_of_blocks(ctx.par_blocks, resolver, summaries)
        for effect in spawned + serial:
            if effect.expr.root_kind == ROOT_UNKNOWN and not effect.via:
                unresolved.append(effect)
        context = list(ctx.par_blocks) + list(ctx.region)

        _check_pairs(spawned, serial, context, False,
                     KIND_CONTINUATION, ctx, None, findings)
        for sibling in ctx.siblings:
            sib_region = region_blocks(sibling)
            sib_effects = effects_of_blocks(sib_region, resolver, summaries)
            _check_pairs(spawned, sib_effects, context + sib_region, False,
                         KIND_SIBLING, ctx, sibling, findings)
        if ctx.self_parallel:
            _check_pairs(spawned, spawned, context, True,
                         KIND_INSTANCES, ctx, None, findings)

    return _dedupe(findings), unresolved


def _dedupe(findings: List[RaceFinding]) -> List[RaceFinding]:
    """One finding per access pair; a MUST verdict beats a MAY for the
    same pair (the same pair often shows up as both sibling- and
    cross-instance overlap)."""
    best: Dict[frozenset, RaceFinding] = {}
    order: List[frozenset] = []
    for finding in findings:
        key = finding.pair_key()
        existing = best.get(key)
        if existing is None:
            best[key] = finding
            order.append(key)
        elif existing.verdict == MAY and finding.verdict == MUST:
            best[key] = finding
    return [best[key] for key in order]


# ---------------------------------------------------------------------------
# Findings -> diagnostics
# ---------------------------------------------------------------------------

_KIND_TEXT = {
    KIND_CONTINUATION: "the spawned task runs in parallel with its parent's "
                       "continuation",
    KIND_SIBLING: "two sibling spawn subtrees run in parallel",
    KIND_INSTANCES: "parallel instances of the same spawn site overlap",
}


def _access_desc(effect: MemEffect) -> str:
    op = effect.ops[0]
    what = "write to" if effect.is_write else "read of"
    desc = f"{what} {effect.expr.root_desc()}"
    if op.loc is not None:
        desc += f" at line {op.loc}"
    if effect.via:
        call = effect.via[-1]
        desc += f" (via call to @{call.callee.name}"
        if call.loc is not None:
            desc += f" at line {call.loc}"
        desc += ")"
    return desc


def _finding_to_diagnostic(finding: RaceFinding) -> Diagnostic:
    definite = finding.verdict == MUST
    code = "TAP-RACE-001" if definite else "TAP-RACE-002"
    root = finding.a.expr.root_desc()
    flavor = "definite" if definite else "possible"
    message = (f"{flavor} determinacy race on {root}: "
               f"{_KIND_TEXT[finding.kind]} and both touch it "
               f"({'write/write' if finding.b.is_write else 'read/write'})")
    related = [_access_desc(finding.a), _access_desc(finding.b)]
    spawn_line = finding.detach.loc
    spawn = "parallelism created by the spawn site"
    if spawn_line is not None:
        spawn += f" at line {spawn_line}"
    if finding.sibling is not None and finding.sibling.loc is not None:
        spawn += f" (sibling spawned at line {finding.sibling.loc})"
    related.append(spawn)
    if definite:
        suggestion = ("order the accesses with a sync, or make each parallel "
                      "instance touch a distinct location")
    else:
        suggestion = ("the affine analysis could not prove these disjoint; "
                      "if they are, this is a false positive — otherwise add "
                      "a sync or privatize the location")
    loc = finding.a.ops[0].loc
    return Diagnostic(
        code=code,
        message=message,
        severity=SEVERITY_ERROR if definite else SEVERITY_WARNING,
        function=finding.function,
        loc=loc,
        related=related,
        suggestion=suggestion,
        data={
            "kind": finding.kind,
            "verdict": finding.verdict,
            "root": root,
            "spawn_line": spawn_line,
            "write_lines": sorted({op.loc for op in finding.a.ops
                                   if op.loc is not None}),
            "other_lines": sorted({op.loc for op in finding.b.ops
                                   if op.loc is not None}),
        },
        ops=tuple(finding.a.ops) + tuple(finding.b.ops),
    )


def report_from_findings(findings: List[RaceFinding],
                         unresolved: List[MemEffect]) -> DiagnosticReport:
    report = DiagnosticReport()
    for finding in findings:
        report.add(_finding_to_diagnostic(finding))
    seen_ops = set()
    for effect in unresolved:
        op = effect.ops[0]
        if id(op) in seen_ops:
            continue
        seen_ops.add(id(op))
        report.add(Diagnostic(
            code="TAP-MEM-001",
            message="pointer could not be resolved to a base object; "
                    "dependence answers involving this access are "
                    "conservative",
            loc=op.loc,
            ops=(op,),
        ))
    return report


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def analyze_task_graph(graph: TaskGraph) -> DiagnosticReport:
    """Race analysis over an already-extracted task graph."""
    if not graph.mhp_pairs():
        return DiagnosticReport()  # fully serial: nothing can race
    findings, unresolved = find_races(graph)
    return report_from_findings(findings, unresolved)


def analyze_design(design) -> DiagnosticReport:
    """Race analysis of a :class:`~repro.accel.generator.GeneratedDesign`.

    Analysing the design (rather than re-lowering the module) guarantees
    the diagnostics reference the *same* instruction objects the
    simulator executes — which is what the dynamic cross-validator keys
    on."""
    return analyze_task_graph(design.graph)


def analyze_module(module: Module, optimize: bool = True) -> DiagnosticReport:
    """Race analysis of a module, mirroring the generator's front half
    (verify, optimize, verify, extract)."""
    from repro.ir.verifier import verify_module
    from repro.passes.optimize import optimize_module
    from repro.passes.task_extraction import extract_tasks

    verify_module(module)
    if optimize:
        optimize_module(module)
        verify_module(module)
    return analyze_task_graph(extract_tasks(module))
