"""Bench-results schema: records, sweep summary, schema-2/3 readers."""

import json

import pytest

from repro.reports.benchjson import (
    BENCH_SCHEMA_VERSION,
    RECORD_KEYS,
    bench_document,
    bench_record,
    read_bench_json,
    sweep_record,
    write_bench_json,
)

SWEEP = {"points": 2, "jobs": 2, "wall_seconds": 1.5,
         "cache_hits": 1, "cache_misses": 1, "errors": 0}


def test_record_carries_every_key():
    record = bench_record("saxpy", cycles=100)
    assert set(RECORD_KEYS) <= set(record)
    assert record["cache_hit"] is None      # not run through the sweeper
    assert record["worker"] is None
    assert record["host_seconds"] is None   # no engine stats supplied
    assert record["sim_cycles_per_host_second"] is None


def test_record_lifts_host_time_out_of_engine():
    engine = {"name": "event", "host_seconds": 0.25,
              "sim_cycles_per_host_second": 4000.0}
    record = bench_record("saxpy", cycles=1000, engine=engine)
    assert record["host_seconds"] == 0.25
    assert record["sim_cycles_per_host_second"] == 4000.0


def test_document_schema_and_sweep_block():
    doc = bench_document("b", [bench_record("w", cycles=1)], sweep=SWEEP)
    assert doc["schema"] == BENCH_SCHEMA_VERSION == 4
    assert doc["sweep"]["cache_hits"] == 1
    assert doc["telemetry"] is None
    assert doc["history"] is None
    # no sweep block is legal (non-sweep benches)
    assert bench_document("b", [])["sweep"] is None


def test_document_lifts_telemetry_out_of_sweep_summary():
    """A SweepRunner summary carries its telemetry block inline; the
    document keeps the strict sweep keys and hoists telemetry up."""
    summary = dict(SWEEP, telemetry={"workers": {}})
    doc = bench_document("b", [], sweep=summary)
    assert doc["sweep"] == SWEEP
    assert doc["telemetry"] == {"workers": {}}


def test_document_rejects_incomplete_records_and_sweeps():
    with pytest.raises(ValueError):
        bench_document("b", [{"workload": "w"}])
    with pytest.raises(ValueError):
        bench_document("b", [], sweep={"points": 1})


def test_sweep_record_carries_provenance():
    point = {"spec": {"workload": "w"}, "status": "ok", "cache_hit": True,
             "worker": 4242, "seconds": 0.1, "queue_wait": 0.02,
             "value": {"cycles": 77, "stats": None}, "error": None}
    record = sweep_record(point, "w", config={"ntiles": 2})
    assert record["cycles"] == 77
    assert record["cache_hit"] is True
    assert record["worker"] == 4242
    assert record["metrics"]["queue_wait"] == 0.02


def test_sweep_record_structured_error():
    point = {"spec": {"workload": "w"}, "status": "error", "cache_hit": False,
             "worker": 1, "seconds": 0.1, "value": None,
             "error": {"type": "ValueError", "message": "boom",
                       "traceback": "..."}}
    record = sweep_record(point, "w")
    assert record["cycles"] is None
    assert record["metrics"]["error"]["type"] == "ValueError"


def test_write_then_read_roundtrip(tmp_path):
    path = tmp_path / "doc.json"
    write_bench_json(str(path), "b", [bench_record("w", cycles=9)],
                     sweep=SWEEP, history={"path": "h.jsonl", "seq": 3})
    doc = read_bench_json(str(path))
    assert doc["schema"] == 4
    assert doc["records"][0]["cycles"] == 9
    assert doc["sweep"] == SWEEP
    assert doc["history"] == {"path": "h.jsonl", "seq": 3}


def test_reader_normalises_schema_2(tmp_path):
    """Documents written before the sweep runner existed stay valid:
    the reader lifts them to the schema-4 shape in memory."""
    path = tmp_path / "old.json"
    legacy_record = {"workload": "w", "config": None, "cycles": 5,
                     "utilization": None, "stalls": None, "engine": None,
                     "metrics": {}}
    path.write_text(json.dumps(
        {"bench": "b", "schema": 2, "records": [legacy_record]}))
    doc = read_bench_json(str(path))
    assert doc["schema"] == 4
    assert doc["sweep"] is None
    assert doc["telemetry"] is None
    assert doc["history"] is None
    record = doc["records"][0]
    assert record["cycles"] == 5
    assert record["cache_hit"] is None
    assert record["worker"] is None
    assert record["host_seconds"] is None


def test_reader_normalises_schema_3(tmp_path):
    """Schema-3 documents (pre host-telemetry) stay readable: the new
    flat host-time keys are lifted from the record's engine block."""
    path = tmp_path / "v3.json"
    record = {"workload": "w", "config": None, "cycles": 5,
              "utilization": None, "stalls": None,
              "engine": {"name": "event", "host_seconds": 0.5,
                         "sim_cycles_per_host_second": 10.0},
              "cache_hit": False, "worker": 7, "metrics": {}}
    path.write_text(json.dumps(
        {"bench": "b", "schema": 3, "sweep": SWEEP, "records": [record]}))
    doc = read_bench_json(str(path))
    assert doc["schema"] == 4
    assert doc["sweep"] == SWEEP
    assert doc["telemetry"] is None
    out = doc["records"][0]
    assert out["worker"] == 7
    assert out["host_seconds"] == 0.5
    assert out["sim_cycles_per_host_second"] == 10.0


def test_reader_rejects_unknown_schema(tmp_path):
    path = tmp_path / "future.json"
    path.write_text(json.dumps({"bench": "b", "schema": 99, "records": []}))
    with pytest.raises(ValueError):
        read_bench_json(str(path))
