"""Stage 3: elaborate a generated design into a runnable accelerator.

This is the Fig 4 top level: task units wired to the spawn/join network,
per-unit data boxes merging into the shared L1, the L1 backed by DRAM over
AXI, and a host interface that starts root tasks through shared memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.accel.config import AcceleratorConfig
from repro.accel.generator import GeneratedDesign, generate
from repro.errors import SynthesisError
from repro.ir.module import Module
from repro.memory.arbiter import Demux, RoundRobinArbiter, tree_levels
from repro.memory.backing import MainMemory
from repro.memory.cache import Cache
from repro.memory.databox import DataBox
from repro.memory.dram import DRAMModel
from repro.sim import Simulator, Trace
from repro.task.messages import SpawnMessage
from repro.task.network import TaskNetwork
from repro.task.task_unit import TaskUnit


@dataclass
class RunResult:
    """Outcome of one accelerator offload."""

    cycles: int
    retval: Any
    stats: Dict[str, Any]

    def time_seconds(self, mhz: float) -> float:
        return self.cycles / (mhz * 1e6)


class Accelerator:
    """A fully elaborated parallel accelerator plus its host interface."""

    def __init__(self, design: GeneratedDesign, config: AcceleratorConfig,
                 trace: Optional[Trace] = None, observer=None):
        self.design = design
        self.config = config
        self.trace = trace
        self.observer = observer
        self.sim = Simulator(design.module.name, engine=config.engine)
        if observer is not None:
            self.sim.attach_observer(observer)
        self.memory = MainMemory(config.memory_bytes)
        self._assign_globals(design.module)

        num_units = len(design.compiled)
        self.network = TaskNetwork(self.sim, "tasknet", num_units)

        # -- shared memory backend: single-ported L1+DRAM (the evaluated
        # model), a banked L1 (§VI future work), or a scratchpad
        self.cache = None
        self.dram = None
        self.scratchpad = None
        self.banked = None
        if config.memory_model == "cache" and config.cache.banks > 1:
            from repro.memory.banked import BankedMemorySystem

            self.banked = BankedMemorySystem(
                self.sim, config.cache, self.memory, num_units,
                dram_latency=config.effective_dram_latency())
            self.dram = self.banked.dram
            unit_req = self.banked.unit_request
            unit_resp = self.banked.unit_response
        else:
            cache_req = self.sim.add_channel("cache.req", 4)
            cache_resp = self.sim.add_channel("cache.resp", 4)
            if config.memory_model == "cache":
                dram_req = self.sim.add_channel("dram.req", 4)
                dram_resp = self.sim.add_channel("dram.resp", 4)
                self.cache = self.sim.add_component(Cache(
                    "L1", config.cache, self.memory,
                    cache_req, cache_resp, dram_req, dram_resp))
                self.dram = self.sim.add_component(DRAMModel(
                    "DRAM", dram_req, dram_resp,
                    latency=config.effective_dram_latency()))
            else:
                from repro.memory.scratchpad import Scratchpad

                self.scratchpad = self.sim.add_component(Scratchpad(
                    "SPM", self.memory, cache_req, cache_resp,
                    latency=config.scratchpad_latency))
            unit_req = [self.sim.add_channel(f"u{i}.memreq", 2)
                        for i in range(num_units)]
            unit_resp = [self.sim.add_channel(f"u{i}.memresp", 2)
                         for i in range(num_units)]
            self.sim.add_component(RoundRobinArbiter(
                "memnet.arb", unit_req, cache_req,
                levels=tree_levels(num_units)))
            self.sim.add_component(Demux(
                "memnet.demux", cache_resp, unit_resp,
                levels=tree_levels(num_units)))

        # -- task units -------------------------------------------------------
        self.units: List[TaskUnit] = []
        self.databoxes: List[DataBox] = []
        for i, compiled in enumerate(design.compiled):
            params = config.params_for(compiled.name)
            sizing = design.sizing[compiled.task]
            queue_depth = params.queue_depth or sizing.recommended_queue_depth
            policy = params.policy or ("lifo" if sizing.recursive else "fifo")

            box = DataBox(self.sim, f"u{i}.databox", i, params.ntiles,
                          unit_req[i], unit_resp[i],
                          entries=params.databox_entries)
            self.databoxes.append(box)

            frame_base = 0
            if compiled.frame_size > 0:
                frame_base = self.memory.reserve_region(
                    queue_depth * compiled.frame_size)

            unit = TaskUnit(
                f"T{i}:{compiled.name}", compiled,
                spawn_in=self.network.spawn_in[i],
                join_in=self.network.join_in[i],
                spawn_out=self.network.spawn_out[i],
                join_out=self.network.join_out[i],
                tile_requests=box.tile_request,
                tile_responses=box.tile_response,
                queue_depth=queue_depth, policy=policy,
                max_inflight_per_tile=params.max_inflight_per_tile,
                frame_base=frame_base, frame_size=compiled.frame_size,
                port=i, latencies=config.latencies, trace=trace)
            self.sim.add_component(unit)
            self.units.append(unit)

        self._unit_by_name = {u.compiled.name: u for u in self.units}

    # -- host interface ---------------------------------------------------

    def _assign_globals(self, module: Module):
        for var in module.globals:
            var.address = self.memory.alloc(var.size_bytes)

    def unit(self, name: str) -> TaskUnit:
        unit = self._unit_by_name.get(name)
        if unit is None:
            raise SynthesisError(f"no task unit named {name}")
        return unit

    def run(self, function_name: str, args, max_cycles: int = 20_000_000) -> RunResult:
        """Offload one root-task invocation and run it to completion.

        ``args`` are Python values matching the function signature
        (pointers are integer addresses from :attr:`memory`).
        """
        from repro.telemetry.spans import TRACER

        root = self.unit(function_name)
        root.root_done = False
        root.root_retval = None
        self.network.host_spawn.push(SpawnMessage(
            dest_sid=root.sid, args=tuple(args),
            parent_sid=None, parent_dyid=None))
        with TRACER.span("simulate", category="sim", entry=function_name,
                         engine=self.sim.engine):
            cycles = self.sim.run(lambda: root.root_done,
                                  max_cycles=max_cycles)
        # drain stragglers (posted joins already counted; writebacks etc.)
        return RunResult(cycles=cycles, retval=root.root_retval,
                         stats=self.collect_stats())

    def collect_stats(self) -> Dict[str, Any]:
        stats = {
            "cycles": self.sim.cycle,
            "engine": self.sim.engine_stats(),
            "network": self.network.stats(),
            "units": {u.name: u.stats() for u in self.units},
        }
        if self.cache is not None:
            stats["cache"] = self.cache.stats()
        if self.banked is not None:
            stats["cache"] = self.banked.stats()
        if self.dram is not None:
            stats["dram"] = self.dram.stats()
        if self.scratchpad is not None:
            stats["scratchpad"] = self.scratchpad.stats()
        channels = self.sim.stats().get("channels")
        if channels:
            stats["channels"] = channels
        if self.observer is not None:
            stats["obs"] = self.observer.as_dict()
        return stats


def _analysis_gate(design, level: str, module_name: str, config=None):
    """Run the static race analysis and the hardware lint on the generated
    design and either warn or refuse to elaborate, per
    ``AcceleratorConfig.analysis_level``.

    The lint runs without a designated entry, so its deadlock rule hardens
    to an error for any task that can never complete once spawned — such a
    design needs ``analysis_level="none"`` (and a bounded ``max_cycles``)
    to be elaborated at all.
    """
    import sys

    from repro.analysis import analyze_design
    from repro.analysis.diagnostics import SEVERITY_ERROR, SEVERITY_WARNING
    from repro.analysis.lint import lint_design
    from repro.errors import AnalysisError

    report = analyze_design(design)
    report.extend(lint_design(design, config=config))
    threshold = SEVERITY_ERROR if level == "warn" else SEVERITY_WARNING
    if report.fails(threshold):
        raise AnalysisError(
            f"analysis level {level!r} refused to build {module_name}: "
            f"{report.count(SEVERITY_ERROR)} error(s), "
            f"{report.count(SEVERITY_WARNING)} warning(s)\n"
            + report.render_text(module_name),
            diagnostics=report.sorted())
    for diag in report.sorted():
        print(diag.render(), file=sys.stderr)


def build_accelerator(module: Module, config: Optional[AcceleratorConfig] = None,
                      trace: Optional[Trace] = None,
                      observer=None) -> Accelerator:
    """The complete toolchain: parallel IR in, elaborated accelerator out."""
    from repro.telemetry.spans import TRACER

    config = config or AcceleratorConfig()
    design = generate(module)
    if config.analysis_level != "none":
        with TRACER.span("analysis.gate", category="generate",
                         module=module.name):
            _analysis_gate(design, config.analysis_level, module.name,
                           config=config)
    with TRACER.span("elaborate", category="generate", module=module.name):
        return Accelerator(design, config, trace=trace, observer=observer)
