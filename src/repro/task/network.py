"""The inter-unit spawn/join network.

The paper wires task units point-to-point (Fig 4's generated Chisel); a
shared arbitrated network is timing-equivalent at these scales and keeps
the topology independent of the task graph — any unit can spawn any other
unit, which is what makes heterogeneous/recursive graphs compose (the SID
"serves as the network id of the parent task unit to route back on a
join", §III-B).
"""

from __future__ import annotations

from typing import List

from repro.memory.arbiter import Demux, RoundRobinArbiter, tree_levels
from repro.sim import Channel, Simulator


class TaskNetwork:
    """Spawn and join crossbars over ``num_units`` task units.

    Exposes per-unit channel pairs plus a host injection port used by the
    runtime to start the root task.
    """

    def __init__(self, sim: Simulator, name: str, num_units: int):
        self.name = name
        self.num_units = num_units

        self.spawn_out: List[Channel] = [
            sim.add_channel(f"{name}.u{i}.spawn_out", 2) for i in range(num_units)]
        self.spawn_in: List[Channel] = [
            sim.add_channel(f"{name}.u{i}.spawn_in", 2) for i in range(num_units)]
        self.join_out: List[Channel] = [
            sim.add_channel(f"{name}.u{i}.join_out", 2) for i in range(num_units)]
        self.join_in: List[Channel] = [
            sim.add_channel(f"{name}.u{i}.join_in", 2) for i in range(num_units)]
        #: host-side injection of the root spawn
        self.host_spawn: Channel = sim.add_channel(f"{name}.host_spawn", 2)

        spawn_merged = sim.add_channel(f"{name}.spawn_merged", 2)
        join_merged = sim.add_channel(f"{name}.join_merged", 2)
        levels = tree_levels(num_units + 1)

        self.spawn_arbiter = sim.add_component(RoundRobinArbiter(
            f"{name}.spawn_arb", self.spawn_out + [self.host_spawn],
            spawn_merged, levels=levels))
        self.spawn_demux = sim.add_component(Demux(
            f"{name}.spawn_demux", spawn_merged, self.spawn_in,
            levels=levels, route=lambda m: m.dest_sid))
        self.join_arbiter = sim.add_component(RoundRobinArbiter(
            f"{name}.join_arb", self.join_out, join_merged, levels=levels))
        self.join_demux = sim.add_component(Demux(
            f"{name}.join_demux", join_merged, self.join_in,
            levels=levels, route=lambda m: m.parent_sid))

    def stats(self):
        return {
            "spawns_routed": self.spawn_demux.routed,
            "joins_routed": self.join_demux.routed,
        }
