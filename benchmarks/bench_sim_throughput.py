"""Simulator throughput: the three-engine matrix (dense / event / compiled).

Not a paper figure — this measures the *host-side* cost of the cycle
simulator itself. Two layered optimisations are gated here:

* the **event engine** (wakeup scheduling plus quiescent fast-forward)
  must deliver a large wall-clock win over the dense oracle on
  memory-bound workloads, where most cycles are DRAM-latency quiet
  spans, while staying within noise of the oracle on always-hot ones;
* the **compiled engine** (per-design specialized flat kernels,
  ``repro.sim.compile``) must beat the event engine *everywhere*: it
  inherits the event engine's fast-forward, then removes Python
  interpretation overhead from the cycles that actually execute.

All three engines must stay bit-identical on every config here (cycle
counts asserted below; the full stats contract is enforced by
``tests/sim/test_engine_diff.py`` and the hypothesis parity properties).

Configurations:

* ``fib`` / ``mergesort`` / ``stencil`` — default configs: activity is
  dense (something fires almost every cycle), so there is nothing to
  fast-forward and every saved microsecond must come from cheaper
  per-cycle execution.
* ``saxpy-membound`` — 1 KB cache, a single MSHR (the paper's §VI notes
  TAPAS has limited support for multiple outstanding misses), 270-cycle
  DRAM latency (the paper's Table V DRAM access time). Nearly every
  cycle is a quiet DRAM wait: the fast-forward regime.

Gates (best-of-N interleaved wall clock, thresholds ~30-40% under the
measured speedups to absorb shared-runner noise — the measured numbers
and the analysis of why the compiled engine plateaus at ~2-3x over the
event engine on always-hot workloads live in docs/simulator.md):

========================  =======================  ====================
case                      compiled vs event        compiled vs dense
========================  =======================  ====================
fib                       >= 1.4x  (meas. ~2.2x)   --
mergesort                 >= 1.7x  (meas. ~2.6x)   --
stencil                   >= 1.6x  (meas. ~2.5x)   --
saxpy-membound            >= 1.2x  (meas. ~1.8x)   >= 6x (meas. ~11x)
========================  =======================  ====================

The event engine keeps its original gates: >= 5x over dense on the
memory-bound case, within 5% of dense on always-hot ones.

The cases run through the SweepRunner like every other bench, but with
the result cache disabled and a single worker: this bench measures host
wall-clock, which a cache hit would skip and parallel workers would
perturb.
"""

import time

import sweeplib

from repro.exp import config_from_spec, register_evaluator
from repro.reports import render_table, sweep_record
from repro.workloads import REGISTRY

#: the three kernels under test, in measurement-interleave order
ENGINES = ("dense", "event", "compiled")

#: (row name, workload, scale, plain-JSON config overrides)
CASES = [
    ("fib", "fibonacci", 2, {}),
    ("mergesort", "mergesort", 2, {}),
    ("stencil", "stencil", 2, {}),
    ("saxpy-membound", "saxpy", 16,
     {"board": "Arria 10",
      "cache": {"size_bytes": 1024, "mshr_count": 1},
      "dram_latency_cycles": 270}),
]

#: compiled-vs-event wall-clock floor per case (see the module table)
COMPILED_MIN_SPEEDUP = {
    "fib": 1.4,
    "mergesort": 1.7,
    "stencil": 1.6,
    "saxpy-membound": 1.2,
}

#: compiled-vs-dense floor on the memory-bound case: fast-forward and
#: specialization compose, so the product gate is the headline number
COMPILED_MEMBOUND_VS_DENSE = 6.0

#: event-vs-dense gate for the memory-bound case (observers detached)
MEMBOUND_MIN_SPEEDUP = 5.0

#: even on always-hot workloads (fib: something fires nearly every
#: cycle) the event engine's hot-set scheduling must keep its overhead
#: under 5% of the dense oracle
ALWAYS_HOT_MIN_SPEEDUP = 0.95

#: wall-clock repetitions per (case, engine); best-of damps allocator
#: warm-up and scheduler noise, which on a shared single-core host
#: swamps the margins the gates are about
MEASURE_REPS = 5


def _eval_throughput_case(spec):
    """Best-of-N seconds for all three engines, repetitions interleaved:
    host noise is time-correlated, so rotating dense/event/compiled
    inside each rep exposes every engine to the same noisy patches
    instead of letting one engine soak up a slow spell alone."""
    workload = REGISTRY.get(spec["workload"])
    best = {}
    results = {}
    for _ in range(MEASURE_REPS):
        for engine in ENGINES:
            config = config_from_spec(workload, dict(spec, engine=engine))
            start = time.perf_counter()
            result = workload.run(config, scale=spec["scale"])
            seconds = time.perf_counter() - start
            assert result.correct, f"{spec['case']} wrong under {engine}"
            if engine not in best or seconds < best[engine]:
                best[engine] = seconds
                results[engine] = result
    cycles = {engine: results[engine].cycles for engine in ENGINES}
    assert len(set(cycles.values())) == 1, (spec["case"], cycles)
    compiled = results["compiled"]
    engine_stats = compiled.stats["engine"]
    assert engine_stats.get("compiled_fallback") is None, (
        f"{spec['case']}: compiled run fell back "
        f"({engine_stats['compiled_fallback']!r})")

    def _ratio(a, b):
        return best[a] / best[b] if best[b] else float("inf")

    return {
        "name": spec["case"], "workload": spec["workload"],
        "scale": spec["scale"],
        "cycles": compiled.cycles,
        "seconds": {engine: best[engine] for engine in ENGINES},
        "event_speedup": _ratio("dense", "event"),
        "compiled_speedup": _ratio("event", "compiled"),
        "compiled_vs_dense": _ratio("dense", "compiled"),
        "cycles_per_second": (compiled.cycles / best["compiled"]
                              if best["compiled"] else float("inf")),
        "fast_forwarded_cycles":
            results["event"].stats["engine"]["fast_forwarded_cycles"],
        "stats": compiled.stats,
        "dense_stats": results["dense"].stats["engine"],
        "event_stats": results["event"].stats["engine"],
    }


register_evaluator("sim_throughput", _eval_throughput_case,
                   program_text=sweeplib.file_program_text(__file__))


def test_sim_throughput(benchmark, save_result, save_json):
    runner = sweeplib.make_runner(jobs=1, cache=None)
    points = [{"evaluator": "sim_throughput", "case": case,
               "workload": workload, "tiles": 2, "scale": scale,
               "overrides": overrides}
              for case, workload, scale, overrides in CASES]

    def run():
        return sweeplib.run_points(runner, points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = result.values

    table = render_table(
        ["Case", "Cycles", "Dense s", "Event s", "Compiled s",
         "Evt/Dns", "Cmp/Evt", "Cmp/Dns", "Mcyc/s"],
        [[r["name"], r["cycles"],
          round(r["seconds"]["dense"], 3),
          round(r["seconds"]["event"], 3),
          round(r["seconds"]["compiled"], 3),
          f"{r['event_speedup']:.2f}x",
          f"{r['compiled_speedup']:.2f}x",
          f"{r['compiled_vs_dense']:.2f}x",
          round(r["cycles_per_second"] / 1e6, 3)]
         for r in rows],
        title="Simulator throughput — dense oracle vs event engine "
              "vs compiled kernels")
    save_result("sim_throughput", table)
    save_json("sim_throughput", [
        sweep_record(record, record["value"]["workload"],
                     config={"ntiles": 2, "scale": record["value"]["scale"],
                             "case": record["value"]["name"]},
                     dense_host_seconds=round(
                         record["value"]["seconds"]["dense"], 6),
                     event_host_seconds=round(
                         record["value"]["seconds"]["event"], 6),
                     compiled_host_seconds=round(
                         record["value"]["seconds"]["compiled"], 6),
                     event_speedup=round(record["value"]["event_speedup"], 2),
                     compiled_speedup=round(
                         record["value"]["compiled_speedup"], 2),
                     compiled_vs_dense=round(
                         record["value"]["compiled_vs_dense"], 2),
                     fast_forwarded_cycles=record["value"][
                         "fast_forwarded_cycles"])
        for record in result.records], sweep=result.summary)

    by_name = {r["name"]: r for r in rows}
    membound = by_name["saxpy-membound"]
    # event-engine gates (unchanged from the two-engine bench): the
    # fast-forward pays off where cycles are quiet ...
    assert membound["event_speedup"] >= MEMBOUND_MIN_SPEEDUP, (
        f"memory-bound event speedup {membound['event_speedup']:.2f}x "
        f"< {MEMBOUND_MIN_SPEEDUP}x")
    assert membound["fast_forwarded_cycles"] > membound["cycles"] // 2
    # ... while hot-set scheduling plus the adaptive dense fallback keep
    # the event engine within 5% of the dense oracle where nothing can
    # be skipped
    for name in ("fib", "mergesort", "stencil"):
        assert by_name[name]["event_speedup"] >= ALWAYS_HOT_MIN_SPEEDUP, (
            f"{name}: event engine {by_name[name]['event_speedup']:.2f}x "
            f"dense < {ALWAYS_HOT_MIN_SPEEDUP}x on an always-hot workload")
    # compiled-engine gates: specialized kernels must beat the event
    # engine on every case — always-hot wins come from cheaper executed
    # cycles, the memory-bound win stacks on top of fast-forward
    for name, floor in COMPILED_MIN_SPEEDUP.items():
        got = by_name[name]["compiled_speedup"]
        assert got >= floor, (
            f"{name}: compiled kernel {got:.2f}x event < {floor}x")
    assert membound["compiled_vs_dense"] >= COMPILED_MEMBOUND_VS_DENSE, (
        f"memory-bound compiled-vs-dense "
        f"{membound['compiled_vs_dense']:.2f}x "
        f"< {COMPILED_MEMBOUND_VS_DENSE}x")
