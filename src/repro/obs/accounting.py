"""Cycle accounting: where did every cycle of every component go?

The paper's evaluation (Fig 13-17, Table III) is a story about cycle
attribution — spawn-rate limits, tile occupancy, memory backpressure.
This module holds the passive bookkeeping: a :class:`CycleLedger` per
component (and per TXU tile) that classifies each simulated cycle as
busy / stalled-on-input / stalled-on-output / idle, and a
:class:`ChannelProbe` per channel recording occupancy histograms,
backpressure cycles and peak depth.

Everything here is written to, never read from, the simulation — the
observer samples component state *after* each tick, so attaching the
instrumentation cannot change cycle counts (enforced by test).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.sim.component import (
    OBS_BUSY,
    OBS_IDLE,
    OBS_STALL_IN,
    OBS_STALL_OUT,
    OBS_STATES,
)
from repro.sim.stats import StatCounters, utilization

#: ledger key prefix under which stall reasons are counted
REASON_PREFIX = "reason:"


class CycleLedger:
    """Per-component cycle attribution.

    Counts are kept in a :class:`~repro.sim.stats.StatCounters` (one key
    per state, plus ``reason:<tag>`` keys for stall attribution) and,
    optionally, as a run-length-encoded state timeline for trace export.
    The invariant ``busy + stall_in + stall_out + idle == cycles`` holds
    by construction: :meth:`record` is called exactly once per observed
    cycle.
    """

    def __init__(self, name: str, group: Optional[str] = None,
                 keep_timeline: bool = True):
        self.name = name
        #: track grouping for trace export (a tile's group is its unit)
        self.group = group or name
        self.counters = StatCounters()
        self.cycles = 0
        self.keep_timeline = keep_timeline
        #: RLE state runs: [start, end_exclusive, state, reason]
        self.timeline: List[list] = []

    def record(self, cycle: int, state: str, reason: Optional[str] = None):
        if state not in OBS_STATES:
            raise ValueError(f"ledger {self.name}: unknown state {state!r}")
        self.cycles += 1
        self.counters.bump(state)
        if reason is not None:
            self.counters.bump(REASON_PREFIX + reason)
        if self.keep_timeline:
            runs = self.timeline
            if runs and runs[-1][1] == cycle and runs[-1][2] == state \
                    and runs[-1][3] == reason:
                runs[-1][1] = cycle + 1
            else:
                runs.append([cycle, cycle + 1, state, reason])

    def record_span(self, start: int, span: int, state: str,
                    reason: Optional[str] = None):
        """Record ``span`` consecutive cycles of one constant state.

        Used by the event engine's quiescent fast-forward: over a skipped
        range no component ticks and no channel commits, so the per-cycle
        classification the dense engine would have recomputed is provably
        constant. One bulk update yields byte-identical ledgers.
        """
        if span <= 0:
            return
        if state not in OBS_STATES:
            raise ValueError(f"ledger {self.name}: unknown state {state!r}")
        self.cycles += span
        self.counters.bump(state, span)
        if reason is not None:
            self.counters.bump(REASON_PREFIX + reason, span)
        if self.keep_timeline:
            runs = self.timeline
            if runs and runs[-1][1] == start and runs[-1][2] == state \
                    and runs[-1][3] == reason:
                runs[-1][1] = start + span
            else:
                runs.append([start, start + span, state, reason])

    # -- derived views -----------------------------------------------------

    @property
    def busy(self) -> int:
        return self.counters.get(OBS_BUSY)

    @property
    def stalled(self) -> int:
        return self.counters.get(OBS_STALL_IN) + self.counters.get(OBS_STALL_OUT)

    @property
    def idle(self) -> int:
        return self.counters.get(OBS_IDLE)

    def utilization(self) -> float:
        return utilization(self.busy, self.cycles)

    def breakdown(self) -> Dict[str, int]:
        """State -> cycles; always sums to :attr:`cycles`."""
        return {state: self.counters.get(state) for state in OBS_STATES}

    def stall_reasons(self) -> Dict[str, int]:
        """Stall tag -> cycles attributed to it."""
        return {key[len(REASON_PREFIX):]: count
                for key, count in self.counters.as_dict().items()
                if key.startswith(REASON_PREFIX)}

    def as_dict(self) -> dict:
        out = {"cycles": self.cycles, "utilization": self.utilization()}
        out.update(self.breakdown())
        reasons = self.stall_reasons()
        if reasons:
            out["stall_reasons"] = reasons
        return out

    def __repr__(self):
        return (f"<CycleLedger {self.name} {self.cycles} cycles "
                f"{100 * self.utilization():.1f}% busy>")


class ChannelProbe:
    """Per-channel occupancy instrumentation.

    Sampled once per cycle after the channel commits: a depth histogram,
    the number of cycles the channel sat full (producer-visible
    backpressure), the peak depth, and a change-compressed occupancy
    timeline for the trace exporter's counter tracks.
    """

    def __init__(self, channel):
        self.channel = channel
        self.histogram: Counter = Counter()
        self.backpressure_cycles = 0
        self.peak_depth = 0
        self.samples = 0
        #: (cycle, occupancy) recorded only on change — bounded by traffic
        self.occupancy_timeline: List[Tuple[int, int]] = []

    @property
    def name(self) -> str:
        return self.channel.name

    def record(self, cycle: int):
        occ = self.channel.occupancy
        self.samples += 1
        self.histogram[occ] += 1
        if occ > self.peak_depth:
            self.peak_depth = occ
        if occ >= self.channel.capacity:
            self.backpressure_cycles += 1
        tl = self.occupancy_timeline
        if not tl or tl[-1][1] != occ:
            tl.append((cycle, occ))

    def record_span(self, start: int, span: int):
        """Bulk-record ``span`` cycles of frozen occupancy (no commits)."""
        if span <= 0:
            return
        occ = self.channel.occupancy
        self.samples += span
        self.histogram[occ] += span
        if occ > self.peak_depth:
            self.peak_depth = occ
        if occ >= self.channel.capacity:
            self.backpressure_cycles += span
        tl = self.occupancy_timeline
        if not tl or tl[-1][1] != occ:
            tl.append((start, occ))

    def mean_occupancy(self) -> float:
        if not self.samples:
            return 0.0
        return sum(d * n for d, n in self.histogram.items()) / self.samples

    def as_dict(self) -> dict:
        return {
            "pushed": self.channel.total_pushed,
            "popped": self.channel.total_popped,
            "capacity": self.channel.capacity,
            "peak_depth": self.peak_depth,
            "backpressure_cycles": self.backpressure_cycles,
            "mean_occupancy": round(self.mean_occupancy(), 4),
            "histogram": {str(k): v for k, v in sorted(self.histogram.items())},
        }

    def __repr__(self):
        return (f"<ChannelProbe {self.name} peak={self.peak_depth} "
                f"bp={self.backpressure_cycles}>")
