"""Visualisation helpers: task-graph DOT output and execution timelines.

Text-first (the repo runs headless): DOT for rendering elsewhere, and an
ASCII Gantt view of per-unit activity built from a simulation trace —
the Fig 1 "task graph execution" picture, regenerated from real runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.passes.taskgraph import TaskGraph
from repro.sim.trace import Trace


def task_graph_dot(graph: TaskGraph) -> str:
    """GraphViz DOT for a module's static task graph."""
    lines = [
        f'digraph "{graph.module.name}" {{',
        "  rankdir=TB;",
        '  node [shape=box, style=rounded];',
    ]
    for task in graph.tasks:
        label = (f"T{task.sid} {task.name}\\n"
                 f"{task.instruction_count()} insts, "
                 f"{task.memory_op_count()} mem ops")
        lines.append(f'  t{task.sid} [label="{label}"];')
    for task in graph.tasks:
        for child in task.region_spawns.values():
            lines.append(f'  t{task.sid} -> t{child.sid} [label="spawn"];')
        for spawn in task.direct_spawns.values():
            dest = graph.root_for_function[spawn.callee]
            style = ' style=dashed' if dest.sid == task.sid else ""
            lines.append(
                f'  t{task.sid} -> t{dest.sid} [label="spawn"{style}];')
        for call in task.calls:
            dest = graph.root_for_function[call.callee]
            lines.append(
                f'  t{task.sid} -> t{dest.sid} [label="call", color=gray];')
    lines.append("}")
    return "\n".join(lines)


def execution_timeline(trace: Trace, total_cycles: int,
                       width: int = 72, kinds=("spawn-in", "complete"),
                       sources: Optional[List[str]] = None) -> str:
    """ASCII timeline: one row per task unit, one mark per event.

    ``s`` marks a spawn arriving at the unit, ``c`` a completed instance,
    ``*`` both in the same bucket — the paper's Fig 1 execution view.
    """
    if total_cycles <= 0:
        return "(empty run)"
    buckets: Dict[str, List[set]] = {}
    for event in trace.events:
        if event.kind not in kinds:
            continue
        if sources is not None and event.source not in sources:
            continue
        row = buckets.setdefault(event.source, [set() for _ in range(width)])
        slot = min(width - 1, event.cycle * width // max(1, total_cycles))
        row[slot].add(event.kind)

    lines = [f"cycles 0..{total_cycles}  "
             f"(s=spawn arrived, c=instance completed, *=both)"]
    label_width = max((len(s) for s in buckets), default=0)
    for source in sorted(buckets):
        cells = []
        for marks in buckets[source]:
            if len(marks) > 1:
                cells.append("*")
            elif "spawn-in" in marks:
                cells.append("s")
            elif "complete" in marks:
                cells.append("c")
            else:
                cells.append(".")
        lines.append(f"{source.ljust(label_width)} |{''.join(cells)}|")
    return "\n".join(lines)


def utilization_summary(stats: dict, total_cycles: int) -> str:
    """Per-unit tile utilisation from a RunResult's stats dict."""
    lines = [f"{'unit':<24} {'tiles':>5} {'completed':>9} {'avg util':>8}"]
    for name, unit in stats.get("units", {}).items():
        tiles = unit.get("tiles", [])
        if not tiles or total_cycles == 0:
            continue
        util = sum(t["busy_cycles"] for t in tiles) / (
            len(tiles) * total_cycles)
        lines.append(f"{name:<24} {len(tiles):>5} "
                     f"{unit.get('completed', 0):>9} {100 * util:>7.1f}%")
    return "\n".join(lines)
