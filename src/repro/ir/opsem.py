"""Functional semantics of IR operations.

Shared by the TXU dataflow engine and the multicore CPU baseline so both
execute the identical program semantics — the paper runs the *same Cilk
sources* on FPGA and i7 (§V), and we mirror that by running the same IR
through two timing models.
"""

from __future__ import annotations

import struct

from repro.errors import SimulationError
from repro.ir.types import FloatType, IntType, PointerType, Type


def eval_binop(op: str, type_: Type, a, b):
    """Evaluate a binary op with two's-complement / IEEE semantics."""
    if isinstance(type_, IntType):
        ia, ib = int(a), int(b)
        if op == "add":
            r = ia + ib
        elif op == "sub":
            r = ia - ib
        elif op == "mul":
            r = ia * ib
        elif op == "sdiv":
            if ib == 0:
                raise SimulationError("integer division by zero")
            r = abs(ia) // abs(ib) * (1 if (ia >= 0) == (ib >= 0) else -1)
        elif op == "srem":
            if ib == 0:
                raise SimulationError("integer remainder by zero")
            r = ia - (abs(ia) // abs(ib) * (1 if (ia >= 0) == (ib >= 0) else -1)) * ib
        elif op == "and":
            r = ia & ib
        elif op == "or":
            r = ia | ib
        elif op == "xor":
            r = ia ^ ib
        elif op == "shl":
            r = ia << (ib & (type_.bits - 1))
        elif op == "ashr":
            r = ia >> (ib & (type_.bits - 1))
        elif op == "lshr":
            mask = (1 << type_.bits) - 1
            r = (ia & mask) >> (ib & (type_.bits - 1))
        elif op == "smin":
            r = min(ia, ib)
        elif op == "smax":
            r = max(ia, ib)
        else:
            raise SimulationError(f"unknown integer binop {op}")
        return type_.wrap(r)

    fa, fb = float(a), float(b)
    if op == "fadd":
        r = fa + fb
    elif op == "fsub":
        r = fa - fb
    elif op == "fmul":
        r = fa * fb
    elif op == "fdiv":
        if fb == 0.0:
            r = float("inf") if fa > 0 else float("-inf") if fa < 0 else float("nan")
        else:
            r = fa / fb
    elif op == "fmin":
        r = min(fa, fb)
    elif op == "fmax":
        r = max(fa, fb)
    else:
        raise SimulationError(f"unknown float binop {op}")
    # round-trip through f32 so accumulated error matches 32-bit hardware
    return struct.unpack("<f", struct.pack("<f", r))[0]


_ICMP = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
}

_FCMP = {
    "oeq": lambda a, b: a == b,
    "one": lambda a, b: a != b,
    "olt": lambda a, b: a < b,
    "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b,
    "oge": lambda a, b: a >= b,
}


def eval_icmp(predicate: str, a, b) -> int:
    return 1 if _ICMP[predicate](int(a), int(b)) else 0


def eval_fcmp(predicate: str, a, b) -> int:
    return 1 if _FCMP[predicate](float(a), float(b)) else 0


def eval_cast(kind: str, value, to_type: Type):
    if kind in ("trunc", "sext", "zext"):
        return to_type.wrap(int(value))
    if kind == "sitofp":
        return float(int(value))
    if kind == "fptosi":
        return to_type.wrap(int(float(value)))
    if kind == "bitcast":
        return value
    raise SimulationError(f"unknown cast kind {kind}")


def eval_gep(base: int, indices, strides) -> int:
    addr = int(base)
    for index, stride in zip(indices, strides):
        addr += int(index) * stride
    return addr


def to_f32(value: float) -> float:
    """Quantise a Python float to single precision (what memory stores)."""
    return struct.unpack("<f", struct.pack("<f", float(value)))[0]


def value_to_raw(type_: Type, value) -> int:
    """Encode a typed value as the raw little-endian integer a store sends."""
    if isinstance(type_, FloatType):
        return struct.unpack("<I", struct.pack("<f", float(value)))[0]
    if isinstance(type_, PointerType):
        return int(value) & ((1 << 64) - 1)
    if isinstance(type_, IntType):
        return int(value) & ((1 << type_.bits) - 1)
    raise SimulationError(f"cannot encode value of type {type_!r}")


def raw_to_value(type_: Type, raw: int):
    """Decode a load response payload into a typed value."""
    if isinstance(type_, FloatType):
        return struct.unpack("<f", struct.pack("<I", raw & 0xFFFFFFFF))[0]
    if isinstance(type_, PointerType):
        return int(raw)
    if isinstance(type_, IntType):
        return type_.wrap(int(raw))
    raise SimulationError(f"cannot decode value of type {type_!r}")
