"""Comparison baselines: the multicore CPU and static-HLS models."""

from repro.baselines.cpu import (
    CPUCostModel,
    CPURunResult,
    MulticoreCPU,
    TaskNode,
    run_on_cpu,
)
from repro.baselines.static_hls import (
    IMAGE_SCALE_SPEC,
    SAXPY_SPEC,
    TABLE5_SPECS,
    StaticHLSModel,
    StaticHLSReport,
    StaticKernelSpec,
    synthesize_static,
)

__all__ = [
    "CPUCostModel", "CPURunResult", "MulticoreCPU", "TaskNode", "run_on_cpu",
    "IMAGE_SCALE_SPEC", "SAXPY_SPEC", "TABLE5_SPECS", "StaticHLSModel",
    "StaticHLSReport", "StaticKernelSpec", "synthesize_static",
]
