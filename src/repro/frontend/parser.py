"""Recursive-descent parser for the Cilk-like language."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParseError
from repro.frontend import ast
from repro.frontend.lexer import Token, tokenize
from repro.ir.types import F32, I8, I16, I32, I64, PointerType, Type

_BASE_TYPES = {"i8": I8, "i16": I16, "i32": I32, "i64": I64, "f32": F32}

#: binary operator precedence (higher binds tighter)
_PRECEDENCE = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ---------------------------------------------------------

    def _peek(self, offset=0) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._peek()
        return token.kind == kind and (text is None or token.text == text)

    def _match(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._peek()
        if not self._check(kind, text):
            want = text or kind
            raise ParseError(f"expected {want!r}, found {token.text!r}",
                             token.line, token.column)
        return self._advance()

    # -- types --------------------------------------------------------------

    def parse_type(self) -> Type:
        token = self._peek()
        if token.kind == "keyword" and token.text in _BASE_TYPES:
            self._advance()
            type_ = _BASE_TYPES[token.text]
            while self._match("op", "*"):
                type_ = PointerType(type_)
            return type_
        raise ParseError(f"expected a type, found {token.text!r}",
                         token.line, token.column)

    # -- top level ----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program(line=1)
        while not self._check("eof"):
            if self._check("keyword", "global"):
                program.globals.append(self.parse_global())
            elif self._check("keyword", "func"):
                program.functions.append(self.parse_function())
            else:
                token = self._peek()
                raise ParseError(
                    f"expected 'func' or 'global', found {token.text!r}",
                    token.line, token.column)
        return program

    def parse_global(self) -> ast.GlobalDecl:
        start = self._expect("keyword", "global")
        name = self._expect("ident").text
        self._expect("op", ":")
        element = self.parse_type()
        self._expect("op", "[")
        count = int(self._expect("int").text, 0)
        self._expect("op", "]")
        self._expect("op", ";")
        return ast.GlobalDecl(line=start.line, name=name,
                              element_type=element, count=count)

    def parse_function(self) -> ast.FuncDecl:
        start = self._expect("keyword", "func")
        name = self._expect("ident").text
        self._expect("op", "(")
        params = []
        while not self._check("op", ")"):
            if params:
                self._expect("op", ",")
            p_name = self._expect("ident")
            self._expect("op", ":")
            params.append(ast.Param(line=p_name.line, name=p_name.text,
                                    type=self.parse_type()))
        self._expect("op", ")")
        return_type = None
        if self._match("op", "->"):
            return_type = self.parse_type()
        body = self.parse_block()
        return ast.FuncDecl(line=start.line, name=name, params=params,
                            return_type=return_type, body=body)

    # -- statements ---------------------------------------------------------

    def parse_block(self) -> ast.Block:
        start = self._expect("op", "{")
        block = ast.Block(line=start.line)
        while not self._check("op", "}"):
            block.statements.append(self.parse_statement())
        self._expect("op", "}")
        return block

    def parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.kind == "keyword":
            handler = {
                "var": self.parse_var_decl,
                "if": self.parse_if,
                "while": self.parse_while,
                "for": lambda: self.parse_for(parallel=False),
                "cilk_for": lambda: self.parse_for(parallel=True),
                "spawn": self.parse_spawn,
                "sync": self.parse_sync,
                "return": self.parse_return,
            }.get(token.text)
            if handler is not None:
                return handler()
        if token.kind == "op" and token.text == "{":
            return self.parse_block()
        return self.parse_assign_or_call()

    def parse_var_decl(self) -> ast.VarDecl:
        start = self._expect("keyword", "var")
        name = self._expect("ident").text
        self._expect("op", ":")
        type_ = self.parse_type()
        init = None
        spawn_init = None
        if self._match("op", "="):
            if self._check("keyword", "spawn"):
                self._advance()
                call = self.parse_primary()
                if not isinstance(call, ast.CallExpr):
                    raise ParseError("spawn initialiser must be a call",
                                     start.line, start.column)
                spawn_init = call
            else:
                init = self.parse_expression()
        self._expect("op", ";")
        return ast.VarDecl(line=start.line, name=name, declared_type=type_,
                           init=init, spawn_init=spawn_init)

    def parse_if(self) -> ast.If:
        start = self._expect("keyword", "if")
        self._expect("op", "(")
        condition = self.parse_expression()
        self._expect("op", ")")
        then_body = self.parse_block()
        else_body = None
        if self._match("keyword", "else"):
            if self._check("keyword", "if"):
                else_body = self.parse_if()
            else:
                else_body = self.parse_block()
        return ast.If(line=start.line, condition=condition,
                      then_body=then_body, else_body=else_body)

    def parse_while(self) -> ast.While:
        start = self._expect("keyword", "while")
        self._expect("op", "(")
        condition = self.parse_expression()
        self._expect("op", ")")
        return ast.While(line=start.line, condition=condition,
                         body=self.parse_block())

    def parse_for(self, parallel: bool) -> ast.For:
        start = self._expect("keyword", "cilk_for" if parallel else "for")
        self._expect("op", "(")
        if self._check("keyword", "var"):
            init = self.parse_var_decl()  # consumes the ';'
        else:
            init = self.parse_simple_assign()
            self._expect("op", ";")
        condition = self.parse_expression()
        self._expect("op", ";")
        step = self.parse_simple_assign()
        self._expect("op", ")")
        body = self.parse_block()
        return ast.For(line=start.line, init=init, condition=condition,
                       step=step, body=body, parallel=parallel)

    def parse_simple_assign(self) -> ast.Assign:
        target = self.parse_postfix()
        eq = self._expect("op", "=")
        value = self.parse_expression()
        return ast.Assign(line=eq.line, target=target, value=value)

    def parse_spawn(self) -> ast.SpawnStmt:
        start = self._expect("keyword", "spawn")
        if self._check("op", "{"):
            return ast.SpawnStmt(line=start.line, block=self.parse_block())
        call = self.parse_postfix()
        if not isinstance(call, ast.CallExpr):
            raise ParseError("spawn target must be a call or a block",
                             start.line, start.column)
        self._expect("op", ";")
        return ast.SpawnStmt(line=start.line, call=call)

    def parse_sync(self) -> ast.SyncStmt:
        start = self._expect("keyword", "sync")
        self._expect("op", ";")
        return ast.SyncStmt(line=start.line)

    def parse_return(self) -> ast.Return:
        start = self._expect("keyword", "return")
        value = None
        if not self._check("op", ";"):
            value = self.parse_expression()
        self._expect("op", ";")
        return ast.Return(line=start.line, value=value)

    def parse_assign_or_call(self) -> ast.Stmt:
        expr = self.parse_postfix()
        if self._check("op", "="):
            eq = self._advance()
            value = self.parse_expression()
            self._expect("op", ";")
            return ast.Assign(line=eq.line, target=expr, value=value)
        self._expect("op", ";")
        return ast.ExprStmt(line=expr.line, expr=expr)

    # -- expressions -----------------------------------------------------------

    def parse_expression(self, min_precedence: int = 1) -> ast.Expr:
        lhs = self.parse_unary()
        while True:
            token = self._peek()
            if token.kind != "op":
                return lhs
            precedence = _PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                return lhs
            self._advance()
            rhs = self.parse_expression(precedence + 1)
            lhs = ast.Binary(line=token.line, op=token.text, lhs=lhs, rhs=rhs)

    def parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "op" and token.text in ("-", "!"):
            self._advance()
            operand = self.parse_unary()
            return ast.Unary(line=token.line, op=token.text, operand=operand)
        if token.kind == "op" and token.text == "&":
            self._advance()
            target = self.parse_postfix()
            if not isinstance(target, (ast.Index, ast.VarRef)):
                raise ParseError("'&' needs a variable or array element",
                                 token.line, token.column)
            return ast.AddrOf(line=token.line, target=target)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while self._check("op", "["):
            bracket = self._advance()
            index = self.parse_expression()
            self._expect("op", "]")
            expr = ast.Index(line=bracket.line, base=expr, index=index)
        return expr

    def parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "int":
            self._advance()
            return ast.IntLit(line=token.line, value=int(token.text, 0))
        if token.kind == "float":
            self._advance()
            return ast.FloatLit(line=token.line, value=float(token.text))
        if token.kind == "ident":
            self._advance()
            if self._check("op", "("):
                self._advance()
                args = []
                while not self._check("op", ")"):
                    if args:
                        self._expect("op", ",")
                    args.append(self.parse_expression())
                self._expect("op", ")")
                return ast.CallExpr(line=token.line, callee=token.text, args=args)
            return ast.VarRef(line=token.line, name=token.text)
        if token.kind == "op" and token.text == "(":
            self._advance()
            expr = self.parse_expression()
            self._expect("op", ")")
            return expr
        raise ParseError(f"unexpected token {token.text!r} in expression",
                         token.line, token.column)


def parse(source: str) -> ast.Program:
    return Parser(tokenize(source)).parse_program()
