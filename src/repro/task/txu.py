"""TXU: the Task eXecution Unit — a dynamically scheduled dataflow tile.

Each tile interprets its task's per-block dataflow graph with
latency-insensitive semantics (paper §III-C): an operation fires when its
operands are ready, every static operation node accepts at most one new
dynamic firing per cycle (the pipeline-register structural hazard of
Fig 7), memory operations issue into the data box and block only their
dependents, and multiple dynamic task instances share the pipeline
simultaneously.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.ir.instructions import (
    GEP,
    Alloca,
    BinaryOp,
    Br,
    Cast,
    CondBr,
    Detach,
    FCmp,
    ICmp,
    Load,
    Reattach,
    Ret,
    Select,
    Sync,
)
from repro.ir.opsem import (
    eval_binop,
    eval_cast,
    eval_fcmp,
    eval_gep,
    eval_icmp,
    raw_to_value,
    value_to_raw,
)
from repro.ir.values import Constant, GlobalVariable, Value
from repro.memory.databox import MemTag
from repro.memory.messages import MemRequest
from repro.sim.component import OBS_BUSY, OBS_IDLE, OBS_STALL_IN, OBS_STALL_OUT
from repro.task.compiled import CompiledTask
from repro.task.task_queue import SYNC, TaskEntry

#: dataflow-node latencies by functional-unit class (cycles)
DEFAULT_LATENCIES = {
    "alu": 1,
    "gep": 1,
    "mul": 3,
    "div": 12,
    "falu": 4,
    "fmul": 4,
    "fdiv": 16,
    "regread": 1,
    "regwrite": 1,
    "nop": 1,
    "control": 1,
    "spawn": 1,
    "sync": 1,
}

_EPILOGUE_NODE = -1  # synthetic node id for the ret_ptr store

#: wake_at value of an instance that can only be unblocked by a memory or
#: call response (those reset wake_at to 0 on arrival); the task unit's
#: next_wake treats parked instances as channel-driven, not timer-driven
PARKED = 1 << 60

RUN = "run"
EPILOGUE_ISSUE = "epilogue_issue"
EPILOGUE_WAIT = "epilogue_wait"
DONE = "done"


class _RegSlot:
    """Marker value an Alloca produces: a register-file slot handle."""

    __slots__ = ("alloca",)

    def __init__(self, alloca):
        self.alloca = alloca


class Instance:
    """One dynamic task instance in flight on a tile."""

    __slots__ = (
        "uid", "entry", "block", "env", "regs", "node_done", "pending_mem",
        "pending_call", "phase", "retval", "spawned", "block_entry_cycle",
        "wake_at",
    )

    def __init__(self, uid: int, entry: TaskEntry, block):
        self.uid = uid
        self.entry = entry
        self.block = block
        self.env: Dict[Value, Any] = {}
        self.regs: Dict[Alloca, Any] = {}
        #: node index -> cycle at which its result is available
        self.node_done: Dict[int, int] = {}
        self.pending_mem: Set[int] = set()
        self.pending_call: Set[int] = set()
        self.phase = RUN
        self.retval: Any = None
        self.spawned = 0
        self.block_entry_cycle = 0
        #: scheduling hint: no dataflow progress possible before this cycle
        #: (purely a simulation fast path, not architectural state)
        self.wake_at = 0


class TXUTile:
    """One execution tile. Not a Component itself — the owning TaskUnit
    ticks it so unit-level arbitration stays in one place."""

    #: optional hook ``(ir_value, observed) -> None`` called whenever a
    #: dataflow node produces a value (or a register cell is written —
    #: then ``ir_value`` is the Alloca).  Used by the range checker to
    #: cross-validate static intervals against execution; None (the
    #: default) costs one attribute test per fired node.
    value_probe = None

    def __init__(self, unit, tile_index: int, compiled: CompiledTask,
                 request_out, response_in, max_inflight: int = 8,
                 latencies: Optional[Dict[str, int]] = None):
        self.unit = unit
        self.tile_index = tile_index
        self.compiled = compiled
        self.request_out = request_out
        self.response_in = response_in
        self.max_inflight = max_inflight
        self.latencies = latencies or DEFAULT_LATENCIES
        self.instances: List[Instance] = []
        self._by_uid: Dict[int, Instance] = {}
        self._fired: Set[Tuple[Any, int]] = set()
        self._mem_issued_this_cycle = False
        # per-cycle stall markers read by obs_classify (never by timing)
        self._mem_blocked = False
        self._spawn_blocked = False
        self.busy_cycles = 0
        self.completed_instances = 0
        #: earliest cycle any instance on this tile can make progress
        #: without new channel traffic (PARKED = channel-driven only);
        #: recomputed every tick, read by TaskUnit.next_wake
        self._min_wake = PARKED

    # -- capacity ------------------------------------------------------------

    def has_capacity(self) -> bool:
        return len(self.instances) < self.max_inflight

    def start(self, uid: int, entry: TaskEntry, cycle: int) -> Instance:
        """Begin a fresh instance or resume a suspended one."""
        if entry.resume_block is not None:
            inst = Instance(uid, entry, entry.resume_block)
            inst.env = entry.saved_env or {}
            inst.regs = entry.saved_regs or {}
            entry.resume_block = None
            entry.saved_env = None
            entry.saved_regs = None
        else:
            inst = Instance(uid, entry, self.compiled.entry_block)
            for value, arg in zip(self.compiled.arg_values, entry.args):
                inst.env[value] = arg
                if self.value_probe is not None:
                    self.value_probe(value, arg)
        inst.block_entry_cycle = cycle
        self.instances.append(inst)
        self._by_uid[inst.uid] = inst
        return inst

    # -- value resolution -----------------------------------------------------

    def _resolve(self, inst: Instance, value: Value):
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, GlobalVariable):
            if value.address is None:
                raise SimulationError(f"global @{value.name} has no address")
            return value.address
        if value in inst.env:
            return inst.env[value]
        raise SimulationError(
            f"value {value.short()} not available in task {self.compiled.name}")

    def _frame_addr(self, inst: Instance, alloca: Alloca) -> int:
        base = self.unit.frame_address(inst.entry.dyid)
        offset = self.compiled.frame_offsets[alloca]
        return base + offset

    # -- clocked behaviour -----------------------------------------------------

    def tick(self, cycle: int):
        self._fired.clear()
        self._mem_issued_this_cycle = False
        self._mem_blocked = False
        self._spawn_blocked = False
        self._pop_memory_response(cycle)
        if self.instances:
            self.busy_cycles += 1
        finished: List[Instance] = []
        min_wake = PARKED
        for inst in list(self.instances):
            if inst.phase == RUN and cycle < inst.wake_at:
                # nothing can fire before wake_at — skip without the call
                # (same early-return _step_instance would take)
                if inst.wake_at < min_wake:
                    min_wake = inst.wake_at
                continue
            wake = self._step_instance(inst, cycle)
            if inst.phase == DONE:
                finished.append(inst)
            elif wake < min_wake:
                min_wake = wake
        self._min_wake = min_wake
        for inst in finished:
            self.instances.remove(inst)
            del self._by_uid[inst.uid]
            self.completed_instances += 1
            self.unit.instance_finished(inst)

    def _pop_memory_response(self, cycle: int):
        if not self.response_in.can_pop():
            return
        self._apply_response(self.response_in.pop(), cycle)

    def _apply_response(self, resp, cycle: int):
        """Retire a popped memory response (channel-free: the compiled
        engine pops the channel itself and delegates here)."""
        inst = self._by_uid.get(resp.tag.instance)
        if inst is None:
            raise SimulationError(
                f"tile {self.tile_index}: response for unknown instance "
                f"{resp.tag.instance}")
        node_idx = resp.tag.node
        if node_idx == _EPILOGUE_NODE:
            inst.phase = DONE
            return
        inst.pending_mem.discard(node_idx)
        inst.wake_at = 0
        node = self.compiled.dfg(inst.block).nodes[node_idx]
        if isinstance(node.inst, Load):
            inst.env[node.inst] = raw_to_value(node.inst.type, resp.data or 0)
            if self.value_probe is not None:
                self.value_probe(node.inst, inst.env[node.inst])
        inst.node_done[node_idx] = cycle

    def deliver_call_return(self, uid: int, node_idx: int, retval, cycle: int,
                            child_gid=None):
        """A serial call completed; unblock the waiting call node."""
        inst = self._by_uid.get(uid)
        if inst is None:
            raise SimulationError(f"call return for unknown instance {uid}")
        self.unit.analysis_event(
            "call-return", f"gid={inst.entry.gid}",
            {"gid": inst.entry.gid, "child_gid": child_gid})
        inst.pending_call.discard(node_idx)
        inst.wake_at = 0
        node = self.compiled.dfg(inst.block).nodes[node_idx]
        if not node.inst.type.is_void():
            inst.env[node.inst] = retval
            if self.value_probe is not None:
                self.value_probe(node.inst, retval)
        inst.node_done[node_idx] = cycle

    # -- per-instance dataflow step ------------------------------------------

    def _step_instance(self, inst: Instance, cycle: int) -> int:
        """Advance one instance; returns its event-engine timer
        contribution: the earliest cycle it can progress without new
        channel traffic, or :data:`PARKED` when only channel movement (a
        memory/call response, a backpressure release) can unblock it."""
        if inst.phase == EPILOGUE_ISSUE:
            self._issue_epilogue_store(inst, cycle)
            # either the store was pushed (our own channel movement wakes
            # the unit) or request_out is full (its pop wakes the unit)
            return PARKED
        if inst.phase != RUN:
            return PARKED  # EPILOGUE_WAIT: response_in wakes the unit
        if cycle < inst.wake_at:
            return inst.wake_at  # fast path: nothing fires before wake_at

        dfg = self.compiled.dfg(inst.block)
        nodes = dfg.nodes
        body_count = len(nodes) - 1  # terminator handled at transition

        fired_any = False
        deferred = False     # structural hazard: the node frees next cycle
        blocked_io = False   # backpressure: a no-op until a channel moves
        for node in nodes[:body_count]:
            idx = node.index
            if idx in inst.node_done or idx in inst.pending_mem or idx in inst.pending_call:
                continue
            if not self._deps_ready(inst, node, cycle):
                continue
            key = (inst.block, idx)
            if key in self._fired:
                deferred = True
                continue  # structural hazard: one firing per node per cycle
            if self._fire(inst, node, cycle):
                self._fired.add(key)
                fired_any = True
            else:
                blocked_io = True  # full channel/buffer: retry when freed

        outcome = self._maybe_transition(inst, dfg, cycle)
        if (fired_any or outcome == "moved") and self.unit.sim is not None:
            self.unit.sim.note_activity()
        if inst.phase != RUN or outcome == "moved" or fired_any or deferred \
                or blocked_io or outcome == "blocked":
            # wake_at stays hot so any unit wake re-steps the instance;
            # the timer contribution distinguishes real next-cycle work
            # from backpressure retries that cannot succeed until the
            # blocking channel moves (which itself wakes the unit)
            inst.wake_at = cycle + 1
            if inst.phase != RUN:
                return PARKED
            if outcome == "moved" or fired_any or deferred:
                return cycle + 1
            return PARKED  # blocked_io / spawn-blocked terminator
        # quiescent: wake when the earliest in-flight node finishes, or on
        # a memory/call response (those reset wake_at to 0 on arrival)
        future = [d for d in inst.node_done.values() if d > cycle]
        if future:
            inst.wake_at = min(future)
        elif inst.pending_mem or inst.pending_call:
            inst.wake_at = PARKED
        else:
            inst.wake_at = cycle + 1
        return inst.wake_at

    def _deps_ready(self, inst: Instance, node, cycle: int) -> bool:
        done = inst.node_done
        for dep in node.deps:
            if done.get(dep, 1 << 60) > cycle:
                return False
        return True

    def _latency(self, kind: str) -> int:
        return self.latencies.get(kind, 1)

    def _fire(self, inst: Instance, node, cycle: int) -> bool:
        """Execute one dataflow node; returns False if it must retry
        (e.g. a full memory channel)."""
        ir = node.inst
        kind = node.kind
        env = inst.env

        if kind in ("load", "store"):
            return self._fire_memory(inst, node, cycle)

        if kind == "call":
            return self._fire_call(inst, node, cycle)

        if kind == "regread":
            slot = ir.pointer
            env[ir] = inst.regs.get(slot, 0)
        elif kind == "regwrite":
            inst.regs[ir.pointer] = self._resolve(inst, ir.value)
        elif kind == "nop":  # alloca
            if isinstance(ir, Alloca):
                if ir.in_frame:
                    env[ir] = self._frame_addr(inst, ir)
                else:
                    env[ir] = _RegSlot(ir)
        elif isinstance(ir, BinaryOp):
            env[ir] = eval_binop(
                ir.op, ir.type,
                self._resolve(inst, ir.lhs), self._resolve(inst, ir.rhs))
        elif isinstance(ir, ICmp):
            env[ir] = eval_icmp(
                ir.predicate,
                self._resolve(inst, ir.lhs), self._resolve(inst, ir.rhs))
        elif isinstance(ir, FCmp):
            env[ir] = eval_fcmp(
                ir.predicate,
                self._resolve(inst, ir.operands[0]),
                self._resolve(inst, ir.operands[1]))
        elif isinstance(ir, Select):
            cond, if_true, if_false = ir.operands
            env[ir] = (self._resolve(inst, if_true)
                       if self._resolve(inst, cond)
                       else self._resolve(inst, if_false))
        elif isinstance(ir, Cast):
            env[ir] = eval_cast(ir.kind, self._resolve(inst, ir.operands[0]),
                                ir.type)
        elif isinstance(ir, GEP):
            base = self._resolve(inst, ir.base)
            if isinstance(base, _RegSlot):
                raise SimulationError(
                    "address arithmetic on a register slot — scalar allocas "
                    "may only be loaded/stored directly")
            env[ir] = eval_gep(
                base, [self._resolve(inst, i) for i in ir.indices], ir.strides)
        else:
            raise SimulationError(f"TXU cannot execute {ir.opcode}")

        if self.value_probe is not None:
            if kind == "regwrite":
                self.value_probe(ir.pointer, inst.regs[ir.pointer])
            elif kind != "nop" and ir in env:
                self.value_probe(ir, env[ir])

        inst.node_done[node.index] = cycle + self._latency(kind)
        return True

    def _fire_memory(self, inst: Instance, node, cycle: int) -> bool:
        if self._mem_issued_this_cycle:
            return False
        if not self.request_out.can_push():
            self._mem_blocked = True
            return False
        ir = node.inst
        addr_val = self._resolve(inst, ir.pointer)
        if isinstance(addr_val, _RegSlot):
            raise SimulationError("register access classified as memory op")
        tag = MemTag(self.unit.sid, self.tile_index, inst.uid, node.index)
        if isinstance(ir, Load):
            req = MemRequest(tag=tag, op="load", addr=int(addr_val),
                             size=ir.type.size_bytes, port=self.unit.port)
        else:
            value = self._resolve(inst, ir.value)
            req = MemRequest(tag=tag, op="store", addr=int(addr_val),
                             size=ir.value.type.size_bytes,
                             data=value_to_raw(ir.value.type, value),
                             port=self.unit.port)
        self.unit.analysis_event(
            "mem", f"{req.op} addr={req.addr}",
            {"gid": inst.entry.gid, "op": req.op, "addr": req.addr,
             "size": req.size, "sid": self.unit.sid, "node": node.index,
             "inst": ir})
        self.request_out.push(req)
        self._mem_issued_this_cycle = True
        inst.pending_mem.add(node.index)
        return True

    def _fire_call(self, inst: Instance, node, cycle: int) -> bool:
        ir = node.inst
        spec = self.compiled.call_specs[ir]
        args = tuple(self._resolve(inst, v) for v in spec.arg_values)
        token = (self.tile_index, inst.uid, node.index)
        if not self.unit.issue_call(spec.dest_sid, args, inst.entry, token):
            self._spawn_blocked = True
            return False
        inst.pending_call.add(node.index)
        return True

    # -- block transition ------------------------------------------------------

    def _maybe_transition(self, inst: Instance, dfg, cycle: int) -> Optional[str]:
        """Returns "moved" on a state change, "blocked" when the terminator
        is ready but back-pressured, None when the block is still draining."""
        nodes = dfg.nodes
        term_node = nodes[-1]
        # every body node must be complete
        for node in nodes[:-1]:
            if inst.node_done.get(node.index, 1 << 60) > cycle:
                return None
        if inst.pending_mem or inst.pending_call:
            return None
        # terminator dependencies (spawn-arg marshalling etc.)
        if not self._deps_ready(inst, term_node, cycle):
            return None

        term = term_node.inst
        if isinstance(term, Detach):
            if not self._fire_spawn(inst, term):
                return "blocked"  # spawn network backpressure
            self._enter_block(inst, term.continuation, cycle)
        elif isinstance(term, Sync):
            if inst.entry.child_count > 0:
                self._suspend(inst, term.continuation)
            else:
                # nothing outstanding: the sync is still a join point
                self.unit.analysis_event("sync-pass",
                                         f"gid={inst.entry.gid}",
                                         {"gid": inst.entry.gid})
                self._enter_block(inst, term.continuation, cycle)
        elif isinstance(term, Br):
            self._enter_block(inst, term.dest, cycle)
        elif isinstance(term, CondBr):
            taken = self._resolve(inst, term.cond)
            self._enter_block(inst, term.if_true if taken else term.if_false,
                              cycle)
        elif isinstance(term, Reattach):
            self._finish(inst, None, cycle)
        elif isinstance(term, Ret):
            retval = (self._resolve(inst, term.value)
                      if term.value is not None else None)
            self._finish(inst, retval, cycle)
        else:
            raise SimulationError(f"TXU cannot handle terminator {term.opcode}")
        return "moved"

    def _fire_spawn(self, inst: Instance, detach: Detach) -> bool:
        spec = self.compiled.spawn_specs[detach]
        args = tuple(self._resolve(inst, v) for v in spec.arg_values)
        ret_ptr = (int(self._resolve(inst, spec.ret_ptr_value))
                   if spec.ret_ptr_value is not None else None)
        if not self.unit.issue_spawn(spec.dest_sid, args, inst.entry, ret_ptr):
            self._spawn_blocked = True
            return False
        inst.spawned += 1
        return True

    def _enter_block(self, inst: Instance, block, cycle: int):
        if not self.compiled.owns_block(block):
            raise SimulationError(
                f"task {self.compiled.name}: control left the task region "
                f"into {block.name}")
        inst.block = block
        inst.node_done = {}
        inst.pending_mem = set()
        inst.pending_call = set()
        inst.block_entry_cycle = cycle + 1

    def _suspend(self, inst: Instance, continuation):
        """Vacate the tile while waiting for children (queue state SYNC)."""
        entry = inst.entry
        entry.saved_env = dict(inst.env)
        entry.saved_regs = dict(inst.regs)
        entry.resume_block = continuation
        entry.state = SYNC
        self.instances.remove(inst)
        del self._by_uid[inst.uid]
        self.unit.instance_suspended(inst)

    def _finish(self, inst: Instance, retval, cycle: int):
        inst.retval = retval
        if inst.entry.ret_ptr is not None and retval is not None:
            inst.phase = EPILOGUE_ISSUE
            self._issue_epilogue_store(inst, cycle)
        else:
            inst.phase = DONE

    def _issue_epilogue_store(self, inst: Instance, cycle: int):
        """Write the return value through ret_ptr (shared-cache return)."""
        if self._mem_issued_this_cycle:
            return
        if not self.request_out.can_push():
            self._mem_blocked = True
            return
        rettype = self.compiled.task.function.return_type
        tag = MemTag(self.unit.sid, self.tile_index, inst.uid, _EPILOGUE_NODE)
        self.unit.analysis_event(
            "mem", f"store addr={int(inst.entry.ret_ptr)} (ret)",
            {"gid": inst.entry.gid, "op": "store",
             "addr": int(inst.entry.ret_ptr), "size": rettype.size_bytes,
             "sid": self.unit.sid, "node": _EPILOGUE_NODE, "inst": None})
        self.request_out.push(MemRequest(
            tag=tag, op="store", addr=int(inst.entry.ret_ptr),
            size=rettype.size_bytes,
            data=value_to_raw(rettype, inst.retval),
            port=self.unit.port))
        self._mem_issued_this_cycle = True
        inst.phase = EPILOGUE_WAIT

    # -- reporting --------------------------------------------------------

    def obs_classify(self, cycle: int):
        """Attribute the cycle just ticked (pure poll-time reads).

        Priority: dataflow fired or a functional unit is mid-latency ->
        busy; a spawn/call or memory issue hit backpressure this cycle ->
        stalled-on-output; otherwise every live instance is parked
        waiting on memory responses or child joins -> stalled-on-input.
        """
        if not self.instances:
            return OBS_IDLE, None
        if self._fired:
            return OBS_BUSY, None
        for inst in self.instances:
            for done in inst.node_done.values():
                if done > cycle:
                    return OBS_BUSY, "execute"
        if self._spawn_blocked:
            return OBS_STALL_OUT, "spawn-backpressure"
        if self._mem_blocked:
            return OBS_STALL_OUT, "mem-backpressure"
        if any(inst.pending_mem or inst.phase in (EPILOGUE_ISSUE, EPILOGUE_WAIT)
               for inst in self.instances):
            return OBS_STALL_IN, "memory"
        if any(inst.pending_call for inst in self.instances):
            return OBS_STALL_IN, "call-join"
        return OBS_BUSY, None

    def stats(self) -> dict:
        return {
            "busy_cycles": self.busy_cycles,
            "completed_instances": self.completed_instances,
            "in_flight": len(self.instances),
        }
