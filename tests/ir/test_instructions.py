"""Unit tests for IR instruction construction and invariants."""

import pytest

from repro.errors import IRError
from repro.ir import (
    GEP,
    Alloca,
    BinaryOp,
    Br,
    CondBr,
    Detach,
    Function,
    ICmp,
    IRBuilder,
    Load,
    Module,
    Ret,
    Select,
    Store,
    Sync,
    const,
    ptr,
)
from repro.ir.types import F32, I1, I32, VOID


def make_func(name="f", args=(), names=(), ret=VOID):
    return Function(name, list(args), list(names), ret)


class TestBinaryOps:
    def test_add_type_propagates(self):
        op = BinaryOp("add", const(1), const(2))
        assert op.type == I32

    def test_mismatched_types_rejected(self):
        with pytest.raises(IRError):
            BinaryOp("add", const(1), const(1.0))

    def test_unknown_opcode_rejected(self):
        with pytest.raises(IRError):
            BinaryOp("frobnicate", const(1), const(2))

    def test_float_binop(self):
        op = BinaryOp("fmul", const(2.0), const(3.0))
        assert op.type == F32
        assert op.opcode == "fmul"


class TestComparisons:
    def test_icmp_produces_i1(self):
        cmp = ICmp("slt", const(1), const(2))
        assert cmp.type == I1

    def test_bad_predicate(self):
        with pytest.raises(IRError):
            ICmp("ult", const(1), const(2))  # unsigned not supported

    def test_select_requires_i1(self):
        with pytest.raises(IRError):
            Select(const(1), const(2), const(3))
        cond = ICmp("eq", const(1), const(1))
        sel = Select(cond, const(2), const(3))
        assert sel.type == I32


class TestMemoryInstructions:
    def test_load_type_from_pointee(self):
        slot = Alloca(I32)
        load = Load(slot)
        assert load.type == I32

    def test_load_requires_pointer(self):
        with pytest.raises(IRError):
            Load(const(5))

    def test_store_type_check(self):
        slot = Alloca(I32)
        with pytest.raises(IRError):
            Store(const(1.0), slot)
        Store(const(1), slot)  # ok

    def test_gep_shape_checks(self):
        slot = Alloca(I32)
        with pytest.raises(IRError):
            GEP(slot, [const(0)], [])  # stride count mismatch
        with pytest.raises(IRError):
            GEP(slot, [], [])  # no indices
        with pytest.raises(IRError):
            GEP(slot, [const(0)], [0])  # non-positive stride
        gep = GEP(slot, [const(3)], [4])
        assert gep.type == ptr(I32)

    def test_gep_base_must_be_pointer(self):
        with pytest.raises(IRError):
            GEP(const(5), [const(0)], [4])


class TestTerminators:
    def test_branch_successors(self):
        f = make_func()
        a, b = f.add_block("a"), f.add_block("b")
        br = Br(b)
        assert br.successors() == [b]
        cb = CondBr(ICmp("eq", const(0), const(0)), a, b)
        assert cb.successors() == [a, b]

    def test_condbr_requires_i1(self):
        f = make_func()
        a, b = f.add_block("a"), f.add_block("b")
        with pytest.raises(IRError):
            CondBr(const(1), a, b)

    def test_detach_has_two_successors(self):
        f = make_func()
        d, c = f.add_block("detached"), f.add_block("cont")
        det = Detach(d, c)
        assert det.successors() == [d, c]
        assert det.is_terminator()

    def test_sync_successor(self):
        f = make_func()
        c = f.add_block("after")
        assert Sync(c).successors() == [c]

    def test_ret_has_no_successors(self):
        assert Ret().successors() == []
        assert Ret(const(1)).value.value == 1


class TestCalls:
    def test_call_type_checked_against_signature(self):
        m = Module("m")
        callee = make_func("g", [I32], ["x"], I32)
        m.add_function(callee)
        b = IRBuilder(callee.add_block("entry"))
        b.ret(callee.arguments[0])

        caller = make_func("h")
        m.add_function(caller)
        b2 = IRBuilder(caller.add_block("entry"))
        call = b2.call(callee, [const(7)])
        assert call.type == I32
        with pytest.raises(IRError):
            b2.call(callee, [const(1.0)])
        with pytest.raises(IRError):
            b2.call(callee, [])


class TestBlockDiscipline:
    def test_append_after_terminator_rejected(self):
        f = make_func()
        blk = f.add_block("entry")
        b = IRBuilder(blk)
        b.ret()
        with pytest.raises(IRError):
            b.add(const(1), const(2))

    def test_body_excludes_terminator(self):
        f = make_func()
        blk = f.add_block("entry")
        b = IRBuilder(blk)
        b.add(const(1), const(2))
        b.ret()
        assert len(blk.body()) == 1
        assert blk.terminator is not None

    def test_block_names_deduplicated(self):
        f = make_func()
        a1 = f.add_block("loop")
        a2 = f.add_block("loop")
        assert a1.name != a2.name
        assert f.block(a1.name) is a1
        assert f.block(a2.name) is a2


class TestReplaceOperand:
    def test_replace_counts_occurrences(self):
        x = const(4)
        op = BinaryOp("add", x, x)
        y = const(5)
        assert op.replace_operand(x, y) == 2
        assert op.lhs is y and op.rhs is y
