"""The data box (paper Fig 8): per-task-unit memory front end.

One block per task unit that (i) arbitrates among the memory operations
of its tiles (the in-arbiter tree), (ii) bounds outstanding operations
with an allocator table of staging buffers, and (iii) routes responses
back to the requesting tile (the out-demux network). Grouping the
alignment/staging logic per unit instead of per memory op is the paper's
stated resource optimisation.

Implemented as a single component — request and response each cross the
box in one cycle, which is what a combined arbiter + staging-table block
costs in hardware at these fan-ins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sim import (
    NEVER,
    OBS_BUSY,
    OBS_IDLE,
    OBS_STALL_IN,
    OBS_STALL_OUT,
    Channel,
    Component,
    Simulator,
)


@dataclass(frozen=True)
class MemTag:
    """Routing tag carried through the memory network."""

    unit: int
    tile: int
    instance: int
    node: int


class DataBox(Component):
    """Wires one task unit's tiles to the shared memory network.

    Exposes ``tile_request[i]`` / ``tile_response[i]`` channel pairs to the
    TXUs and one request/response pair toward the global cache arbiter.
    """

    def __init__(self, sim: Simulator, name: str, unit_index: int,
                 num_ports: int, to_cache: Channel, from_cache: Channel,
                 entries: int = 8):
        super().__init__(name)
        self.unit_index = unit_index
        self.num_ports = num_ports
        self.to_cache = to_cache
        self.from_cache = from_cache
        self.entries = max(1, entries)

        self.tile_request: List[Channel] = [
            sim.add_channel(f"{name}.req{i}", capacity=2)
            for i in range(num_ports)
        ]
        self.tile_response: List[Channel] = [
            sim.add_channel(f"{name}.resp{i}", capacity=2)
            for i in range(num_ports)
        ]
        sim.add_component(self)

        self._rr = 0
        self._outstanding = 0
        self.forwarded = 0
        self.peak_outstanding = 0
        self.stalled_cycles = 0
        #: last cycle whose stalled_cycles accounting is complete — the
        #: event engine may skip ticks while the allocator table is full
        #: (state frozen), so the per-cycle counter is caught up in bulk
        self._synced_to = -1

    def _catch_up(self, through_cycle: int):
        gap = through_cycle - self._synced_to
        if gap > 0:
            if self._outstanding >= self.entries:
                self.stalled_cycles += gap
            self._synced_to = through_cycle

    def tick(self, cycle: int):
        self._catch_up(cycle - 1)
        self._synced_to = cycle
        # response path: free a staging entry, route back by tile tag
        if self.from_cache.can_pop():
            resp = self.from_cache.peek()
            out = self.tile_response[resp.tag.tile]
            if out.can_push():
                self.from_cache.pop()
                out.push(resp)
                self._outstanding -= 1

        # request path: round-robin grant, bounded by the allocator table
        if self._outstanding >= self.entries:
            self.stalled_cycles += 1
            return
        if not self.to_cache.can_push():
            return
        n = self.num_ports
        for offset in range(n):
            idx = (self._rr + offset) % n
            if self.tile_request[idx].can_pop():
                self.to_cache.push(self.tile_request[idx].pop())
                self._rr = (idx + 1) % n
                self._outstanding += 1
                self.forwarded += 1
                self.peak_outstanding = max(self.peak_outstanding,
                                            self._outstanding)
                return

    def sensitivity(self):
        return (tuple(self.tile_request) + tuple(self.tile_response)
                + (self.to_cache, self.from_cache))

    def ports(self):
        return (tuple(self.tile_request) + (self.from_cache,),
                tuple(self.tile_response) + (self.to_cache,))

    def next_wake(self, cycle):
        # purely channel-driven: every stall resolves via a pop/push on a
        # sensitivity channel, and our own movement this tick re-wakes us
        return NEVER

    def is_busy(self):
        return self._outstanding > 0

    def obs_classify(self, cycle):
        pending = any(ch.can_pop() for ch in self.tile_request)
        if pending and self._outstanding >= self.entries:
            # allocator table full: input blocked until responses drain
            return OBS_STALL_IN, "allocator-full"
        if pending and not self.to_cache.can_push():
            return OBS_STALL_OUT, "cache-backpressure"
        if self.from_cache.can_pop() and not \
                self.tile_response[self.from_cache.peek().tag.tile].can_push():
            return OBS_STALL_OUT, "tile-backpressure"
        if self._outstanding or pending:
            return OBS_BUSY, None
        return OBS_IDLE, None

    def stats(self):
        if self.sim is not None:
            self._catch_up(self.sim.cycle - 1)
        return {
            "forwarded": self.forwarded,
            "peak_outstanding": self.peak_outstanding,
            "stalled_cycles": self.stalled_cycles,
        }
