"""Function inlining: fold small serial callees into their callers.

Paper §VI ("Task controllers"): *"the task controllers and queuing logic
add latency to the critical path ... TAPAS can benefit from statically
scheduling such loops, and eliminating the task controllers."* Inlining
a serial callee does exactly that — the call's spawn/join round trip
through the callee's task unit disappears and the work joins the
caller's own dataflow.

Only safe targets are inlined: serial (no parallel markers), not
(mutually) recursive, and small enough that duplicating the datapath is
worth removing the controller.

Return values merge through a register slot (an ``alloca`` written by
every inlined ``ret``), which the TXU turns into a task-local register —
no memory traffic.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import PassError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    GEP,
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    ICmp,
    Instruction,
    Load,
    Ret,
    Select,
    Store,
)
from repro.ir.module import Module
from repro.ir.values import Value
from repro.passes.cfg import reverse_post_order

DEFAULT_MAX_INSTS = 60


def _is_serial(function: Function) -> bool:
    return not function.has_parallelism()


def _size(function: Function) -> int:
    return sum(len(b.instructions) for b in function.blocks)


def _reaches(module: Module, start: Function, target: Function) -> bool:
    """True if ``start`` can transitively call ``target``."""
    seen = set()
    stack = [start]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        for inst in current.instructions():
            if isinstance(inst, Call):
                if inst.callee is target:
                    return True
                stack.append(inst.callee)
    return False


def _clone_instruction(inst: Instruction, value_map: Dict[Value, Value],
                       block_map: Dict[BasicBlock, BasicBlock],
                       ret_slot: Optional[Alloca],
                       continuation: BasicBlock) -> List[Instruction]:
    """Clone one callee instruction into caller context. Returns the
    instruction(s) to append (rets expand to store+br)."""

    def op(value: Value) -> Value:
        return value_map.get(value, value)

    if isinstance(inst, BinaryOp):
        return [BinaryOp(inst.op, op(inst.lhs), op(inst.rhs), inst.name)]
    if isinstance(inst, ICmp):
        return [ICmp(inst.predicate, op(inst.lhs), op(inst.rhs), inst.name)]
    if isinstance(inst, FCmp):
        return [FCmp(inst.predicate, op(inst.operands[0]),
                     op(inst.operands[1]), inst.name)]
    if isinstance(inst, Select):
        c, a, b = inst.operands
        return [Select(op(c), op(a), op(b), inst.name)]
    if isinstance(inst, Cast):
        return [Cast(inst.kind, op(inst.operands[0]), inst.type, inst.name)]
    if isinstance(inst, Alloca):
        return [Alloca(inst.allocated_type, inst.name, in_frame=inst.in_frame)]
    if isinstance(inst, GEP):
        return [GEP(op(inst.base), [op(i) for i in inst.indices],
                    list(inst.strides), inst.name)]
    if isinstance(inst, Load):
        return [Load(op(inst.pointer), inst.name)]
    if isinstance(inst, Store):
        return [Store(op(inst.value), op(inst.pointer))]
    if isinstance(inst, Call):
        return [Call(inst.callee, [op(a) for a in inst.args], inst.name)]
    if isinstance(inst, Br):
        return [Br(block_map[inst.dest])]
    if isinstance(inst, CondBr):
        return [CondBr(op(inst.cond), block_map[inst.if_true],
                       block_map[inst.if_false])]
    if isinstance(inst, Ret):
        out: List[Instruction] = []
        if inst.value is not None and ret_slot is not None:
            out.append(Store(op(inst.value), ret_slot))
        out.append(Br(continuation))
        return out
    raise PassError(f"cannot inline instruction {inst.opcode}")


def inline_call(caller: Function, call: Call) -> None:
    """Inline one call site. The callee must be serial and acyclic with
    respect to the caller (checked by the driver)."""
    callee = call.callee
    site_block = call.parent
    position = site_block.instructions.index(call)

    # split the caller block at the call site
    continuation = caller.add_block(f"{site_block.name}.after_inline")
    continuation.instructions = site_block.instructions[position + 1:]
    for moved in continuation.instructions:
        moved.parent = continuation
    site_block.instructions = site_block.instructions[:position]

    # a register slot carries the return value across the inlined body
    ret_slot: Optional[Alloca] = None
    if not callee.return_type.is_void():
        ret_slot = Alloca(callee.return_type, f"{callee.name}.ret")
        site_block.append(ret_slot)

    # clone callee blocks (names uniquified by add_block)
    block_map: Dict[BasicBlock, BasicBlock] = {}
    for block in callee.blocks:
        block_map[block] = caller.add_block(f"{callee.name}.{block.name}")

    value_map: Dict[Value, Value] = {}
    for formal, actual in zip(callee.arguments, call.args):
        value_map[formal] = actual
    for block in reverse_post_order(callee):
        clone_block = block_map[block]
        for inst in block.instructions:
            for clone in _clone_instruction(inst, value_map, block_map,
                                            ret_slot, continuation):
                clone_block.append(clone)
                if not inst.type.is_void() and not isinstance(inst, Ret):
                    value_map[inst] = clone

    # jump into the inlined entry
    site_block.append(Br(block_map[callee.entry]))

    # the call's value becomes a load of the return slot
    if ret_slot is not None:
        replacement = Load(ret_slot, f"{callee.name}.retval")
        continuation.instructions.insert(0, replacement)
        replacement.parent = continuation
        for block in caller.blocks:
            for inst in block.instructions:
                if inst is not replacement:
                    inst.replace_operand(call, replacement)


def prune_unreachable_functions(module: Module, entry_points) -> int:
    """Remove functions unreachable from ``entry_points`` (names). After
    inlining, fully-absorbed callees would otherwise still elaborate into
    task units."""
    keep = set()
    stack = []
    for name in entry_points:
        function = module.function(name)
        if function is None:
            raise PassError(f"unknown entry point {name!r}")
        stack.append(function)
    while stack:
        current = stack.pop()
        if current in keep:
            continue
        keep.add(current)
        for inst in current.instructions():
            if isinstance(inst, Call):
                stack.append(inst.callee)
    removed = 0
    for function in list(module.functions):
        if function not in keep:
            module.remove_function(function)
            removed += 1
    return removed


def inline_calls(module: Module, max_insts: int = DEFAULT_MAX_INSTS) -> int:
    """Inline every eligible call site in the module; returns the count.

    Eligible: the callee is serial, within the size budget, and cannot
    call back into itself (directly or transitively).
    """
    inlined = 0
    changed = True
    while changed:
        changed = False
        for caller in module.functions:
            for block in list(caller.blocks):
                for inst in list(block.instructions):
                    if not isinstance(inst, Call):
                        continue
                    callee = inst.callee
                    if callee is caller:
                        continue
                    if not _is_serial(callee):
                        continue
                    if _size(callee) > max_insts:
                        continue
                    if _reaches(module, callee, callee):
                        continue
                    inline_call(caller, inst)
                    inlined += 1
                    changed = True
                    break  # block structure changed: rescan the function
                if changed:
                    break
            if changed:
                break
    return inlined
