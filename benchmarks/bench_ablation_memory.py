"""Ablation: the memory-system design choices DESIGN.md calls out.

The paper's §VI names the cache hierarchy as the main bottleneck
("limited support for multiple outstanding cache misses"). These
ablations quantify that on our model: MSHR count, data-box staging
entries, and cache capacity.

The MSHR and capacity sweeps are plain config-override grids, so they
use the built-in ``workload`` evaluator; the data-box sweep has to
pre-register per-unit params from the generated design, so it ships its
own evaluator.
"""

import sweeplib

from repro.accel import TaskUnitParams
from repro.exp import register_evaluator, workload_points
from repro.reports import render_table, sweep_record
from repro.workloads import REGISTRY


def _eval_databox(spec):
    workload = REGISTRY.get(spec["workload"])
    ntiles = spec["tiles"]
    config = workload.default_config(ntiles=ntiles)
    config.unit_params = {}
    config.default_ntiles = ntiles
    # apply the databox depth to every unit by pre-registering params
    from repro.accel.generator import generate

    design = generate(workload.fresh_module())
    config.unit_params = {
        ct.name: TaskUnitParams(ntiles=ntiles,
                                databox_entries=spec["databox_entries"])
        for ct in design.compiled
    }
    result = workload.run(config=config, scale=spec["scale"])
    assert result.correct, spec["workload"]
    return {"cycles": result.cycles}


register_evaluator("ablation_databox", _eval_databox,
                   program_text=sweeplib.file_program_text(__file__))


def test_ablation_mshr_count(benchmark, save_result, save_json,
                             sweep_runner):
    """More MSHRs overlap more misses; 1 MSHR serialises DRAM traffic."""
    mshr_counts = (1, 2, 4, 8)
    points = []
    for mshrs in mshr_counts:
        points += workload_points(
            ["saxpy", "matrix_add"], tiles=(4,), scales=2,
            overrides={"cache": {"mshr_count": mshrs}})

    def run():
        return sweeplib.run_points(sweep_runner, points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    data = {mshrs: {} for mshrs in mshr_counts}
    for record in result.records:
        spec, value = record["spec"], record["value"]
        data[spec["overrides"]["cache"]["mshr_count"]][
            spec["workload"]] = value["cycles"]

    rows = [[m, d["saxpy"], d["matrix_add"]] for m, d in data.items()]
    text = render_table(["MSHRs", "saxpy cycles", "matrix cycles"], rows,
                        title="Ablation — MSHR count (memory-bound kernels)")
    save_result("ablation_mshr", text)
    save_json("ablation_mshr", [
        sweep_record(record, record["spec"]["workload"],
                     config={"ntiles": 4,
                             "mshrs": record["spec"]["overrides"][
                                 "cache"]["mshr_count"],
                             "scale": 2})
        for record in result.records], sweep=result.summary)

    # fewer MSHRs must not be faster; 1 MSHR visibly hurts streaming codes
    assert data[1]["saxpy"] > data[4]["saxpy"] * 1.1
    assert data[8]["saxpy"] <= data[1]["saxpy"]
    assert data[8]["matrix_add"] <= data[1]["matrix_add"]


def test_ablation_cache_size(benchmark, save_result, save_json,
                             sweep_runner):
    """The paper's 16K L1 vs smaller: once the matrices stop fitting,
    conflict misses start costing AXI round trips."""
    sizes_kb = (1, 4, 16)
    points = []
    for kb in sizes_kb:
        points += workload_points(
            ["matrix_add"], tiles=(4,), scales=2,
            overrides={"cache": {"size_bytes": kb * 1024}})

    def run():
        return sweeplib.run_points(sweep_runner, points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    data = {record["spec"]["overrides"]["cache"]["size_bytes"] // 1024:
            record["value"]["cycles"] for record in result.records}

    rows = [[kb, cycles] for kb, cycles in data.items()]
    text = render_table(["L1 KB", "matrix_add cycles"], rows,
                        title="Ablation — shared L1 capacity")
    save_result("ablation_cache_size", text)
    save_json("ablation_cache_size", [
        sweep_record(record, "matrix_add",
                     config={"ntiles": 4,
                             "l1_kb": record["spec"]["overrides"][
                                 "cache"]["size_bytes"] // 1024,
                             "scale": 2})
        for record in result.records], sweep=result.summary)
    assert data[16] < data[1]   # 3 matrices thrash a 1 KB L1
    assert data[16] <= data[4]


def test_ablation_databox_entries(benchmark, save_result, save_json,
                                  sweep_runner):
    """The Fig 8 allocator table bounds memory parallelism per unit: a
    single staging entry serialises every tile's memory operations."""
    entry_counts = (1, 2, 8)
    points = [{"evaluator": "ablation_databox", "workload": "matrix_add",
               "tiles": 4, "scale": 2, "databox_entries": entries}
              for entries in entry_counts]

    def run():
        return sweeplib.run_points(sweep_runner, points)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    data = {record["spec"]["databox_entries"]: record["value"]["cycles"]
            for record in result.records}

    rows = [[e, c] for e, c in data.items()]
    text = render_table(["Entries", "matrix cycles"], rows,
                        title="Ablation — data-box staging entries")
    save_result("ablation_databox", text)
    save_json("ablation_databox", [
        sweep_record(record, "matrix_add",
                     config={"ntiles": 4,
                             "databox_entries":
                                 record["spec"]["databox_entries"],
                             "scale": 2})
        for record in result.records], sweep=result.summary)
    assert data[8] < data[1]
