"""Power models: FPGA accelerator (PowerPlay stand-in) and the i7 package.

The FPGA model is ``P = P_static + a*(ALM*f) + b*(BRAM*f)`` with
coefficients least-squares fitted to the seven Table IV rows (mean error
~7%, worst case the Matrix outlier at +34% whose 223 MHz clock is itself
an outlier). The fitting data and procedure are kept here so the fit is
reproducible (`fit_to_table4`).

The CPU reference is the paper's RAPL measurement context: an i7 quad
core under a 4-worker Cilk load — package power in the tens of watts.
"""

from __future__ import annotations

from typing import List, Tuple

#: P = STATIC_W + ALM_F_COEF * (ALMs * MHz * 1e-6) + BRAM_F_COEF * (BRAMs * MHz * 1e-3)
STATIC_W = 0.5610
ALM_F_COEF = 0.30438
BRAM_F_COEF = 0.041138

#: i7-3770-class package power under a 4-core Cilk load (RAPL)
CPU_PACKAGE_WATTS = 48.0

#: Table IV, for refitting/tests: (name, MHz, ALMs, Regs, BRAM, Power W)
TABLE4_ROWS: List[Tuple[str, float, int, int, int, float]] = [
    ("SAXPY", 149, 7195, 9414, 3, 0.957),
    ("Stencil", 142, 11927, 11543, 3, 1.272),
    ("Matrix", 223, 4702, 7025, 3, 0.677),
    ("Image", 141, 4442, 5814, 3, 0.798),
    ("Dedup", 153, 10487, 6509, 3, 1.014),
    ("Fibonacci", 120, 5699, 9887, 62, 1.155),
    ("Mergesort", 134, 14098, 24775, 74, 1.491),
]


def fpga_power_watts(alms: int, brams: int, mhz: float) -> float:
    """Total (static + dynamic) accelerator power."""
    return (STATIC_W
            + ALM_F_COEF * (alms * mhz * 1e-6)
            + BRAM_F_COEF * (brams * mhz * 1e-3))


def cpu_power_watts() -> float:
    return CPU_PACKAGE_WATTS


def perf_per_watt_gain(fpga_seconds: float, fpga_watts: float,
                       cpu_seconds: float, cpu_watts: float = CPU_PACKAGE_WATTS) -> float:
    """(perf/W of the accelerator) / (perf/W of the CPU), Fig 17's metric."""
    fpga_ppw = 1.0 / (fpga_seconds * fpga_watts)
    cpu_ppw = 1.0 / (cpu_seconds * cpu_watts)
    return fpga_ppw / cpu_ppw


def fit_to_table4() -> Tuple[float, float, float]:
    """Re-derive the model coefficients from Table IV (used by tests to
    pin the stored constants to the data)."""
    import numpy as np

    a = np.array([[1.0, alm * mhz * 1e-6, bram * mhz * 1e-3]
                  for _, mhz, alm, _, bram, _ in TABLE4_ROWS])
    b = np.array([p for *_, p in TABLE4_ROWS])
    coef, *_ = np.linalg.lstsq(a, b, rcond=None)
    return tuple(coef)
