"""Control-flow-graph utilities shared by every analysis pass."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function


def predecessor_map(function: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Map each block to the blocks that branch to it (in block order)."""
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in function.blocks}
    for block in function.blocks:
        for succ in block.successors():
            preds[succ].append(block)
    return preds


def reachable_blocks(entry: BasicBlock) -> Set[BasicBlock]:
    """All blocks reachable from ``entry`` following every successor edge."""
    seen: Set[BasicBlock] = set()
    stack = [entry]
    while stack:
        block = stack.pop()
        if block in seen:
            continue
        seen.add(block)
        stack.extend(block.successors())
    return seen


def reverse_post_order(function: Function) -> List[BasicBlock]:
    """RPO over reachable blocks — the canonical forward-analysis order."""
    order: List[BasicBlock] = []
    seen: Set[BasicBlock] = set()

    def visit(block: BasicBlock):
        if block in seen:
            return
        seen.add(block)
        for succ in block.successors():
            visit(succ)
        order.append(block)

    visit(function.entry)
    order.reverse()
    return order


def post_order(function: Function) -> List[BasicBlock]:
    order = reverse_post_order(function)
    order.reverse()
    return order
