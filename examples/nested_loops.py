"""The paper's Fig 3/Fig 5 scenario: nested parallel loops (matrix add).

Shows the hierarchical architecture TAPAS generates for a doubly nested
cilk_for — outer loop control (T0) spawning inner loop controls (T1)
spawning N^2 body tasks (T2) — and sweeps the Stage-3 tile parameter to
show where the memory system saturates (the paper's Fig 15 story).

Run:  python examples/nested_loops.py
"""

from repro.accel import generate
from repro.reports import estimate_resources
from repro.rtl import emit_top
from repro.workloads import MatrixAdd


def main():
    workload = MatrixAdd()
    module = workload.fresh_module()

    print("=== Stage 1: the extracted task hierarchy ===")
    design = generate(module)
    print(design.graph.describe())

    print("\n=== The generated top level (Chisel-flavoured, Fig 4) ===")
    print(emit_top(design))

    print("\n=== Stage 3 sweep: tiles per task unit ===")
    print(f"{'tiles':>6} {'cycles':>8} {'speedup':>8} {'ALMs':>7}")
    baseline = None
    for tiles in (1, 2, 4, 8):
        config = workload.default_config(ntiles=tiles)
        accel = workload.build(config)
        prepared = workload.prepare(accel.memory, scale=2)
        result = accel.run(prepared.function, prepared.args)
        assert prepared.check(accel.memory, result.retval)
        alms = estimate_resources(accel).alms
        baseline = baseline or result.cycles
        print(f"{tiles:>6} {result.cycles:>8} "
              f"{baseline / result.cycles:>7.2f}x {alms:>7}")
    print("\n(speedup saturates once the shared L1's single request port "
          "is the bottleneck — the paper's cache-bandwidth wall)")


if __name__ == "__main__":
    main()
