"""Lexer for the Cilk-like frontend language.

TAPAS is language agnostic — anything that lowers to the parallel IR
works (§III-F). This small language provides ``cilk_for``, ``spawn``,
``sync`` and ``spawn { ... }`` pipe-stage blocks, which covers every
concurrency pattern in the paper's benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import LexError

KEYWORDS = {
    "func", "var", "global", "if", "else", "while", "for", "cilk_for",
    "spawn", "sync", "return", "i8", "i16", "i32", "i64", "f32",
}

#: multi-character operators, longest first so maximal munch works
OPERATORS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^",
    ";", ",", ":", "(", ")", "{", "}", "[", "]",
]


@dataclass
class Token:
    kind: str       # 'ident', 'int', 'float', 'op', 'keyword', 'eof'
    text: str
    line: int
    column: int

    def __repr__(self):
        return f"<{self.kind} {self.text!r} @{self.line}:{self.column}>"


class Lexer:
    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def _peek(self, offset=0) -> str:
        i = self.pos + offset
        return self.source[i] if i < len(self.source) else ""

    def _advance(self, count=1) -> str:
        text = self.source[self.pos:self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def _skip_trivia(self):
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line = self.line
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", start_line, 0)
            else:
                return

    def tokens(self) -> List[Token]:
        result = []
        while True:
            token = self.next_token()
            result.append(token)
            if token.kind == "eof":
                return result

    def next_token(self) -> Token:
        self._skip_trivia()
        line, column = self.line, self.column
        if self.pos >= len(self.source):
            return Token("eof", "", line, column)
        ch = self._peek()

        if ch.isalpha() or ch == "_":
            text = ""
            while self._peek().isalnum() or self._peek() == "_":
                text += self._advance()
            kind = "keyword" if text in KEYWORDS else "ident"
            return Token(kind, text, line, column)

        if ch.isdigit():
            return self._number(line, column)

        for op in OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token("op", op, line, column)

        raise LexError(f"unexpected character {ch!r}", line, column)

    def _number(self, line, column) -> Token:
        text = ""
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            text += self._advance(2)
            # note: guard against peek() == "" at EOF ("" is a substring
            # of any string, so a bare `in` test would never terminate)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                text += self._advance()
            if len(text) == 2:
                raise LexError("malformed hex literal", line, column)
            return Token("int", text, line, column)
        while self._peek().isdigit():
            text += self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            text += self._advance()
            while self._peek().isdigit():
                text += self._advance()
            return Token("float", text, line, column)
        if self._peek().isalpha():
            raise LexError(f"malformed number near {text!r}", line, column)
        return Token("int", text, line, column)


def tokenize(source: str) -> List[Token]:
    return Lexer(source).tokens()
